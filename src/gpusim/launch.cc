#include "gpusim/launch.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "gpusim/sanitizer.h"
#include "gpusim/shared.h"
#include "gpusim/trace.h"

namespace gpusim {

Occupancy compute_occupancy(const DeviceSpec& spec, const LaunchConfig& cfg) {
  if (cfg.warps_per_cta <= 0) {
    throw std::invalid_argument("warps_per_cta must be positive");
  }
  if (cfg.shared_bytes_per_cta > spec.shared_mem_per_cta) {
    throw std::invalid_argument("shared memory request exceeds per-CTA limit");
  }
  const int threads_per_cta = cfg.warps_per_cta * kWarpSize;
  std::int64_t by_regs =
      cfg.regs_per_thread > 0
          ? std::int64_t(spec.regs_per_sm) /
                (std::int64_t(cfg.regs_per_thread) * threads_per_cta)
          : spec.max_ctas_per_sm;
  std::int64_t by_smem =
      cfg.shared_bytes_per_cta > 0
          ? std::int64_t(spec.shared_mem_per_sm / cfg.shared_bytes_per_cta)
          : spec.max_ctas_per_sm;
  std::int64_t by_warps = spec.max_warps_per_sm / cfg.warps_per_cta;
  std::int64_t ctas = std::min({std::int64_t(spec.max_ctas_per_sm), by_regs,
                                by_smem, by_warps});
  if (ctas < 1) ctas = 1;  // the hardware always runs at least one CTA
  Occupancy occ;
  occ.ctas_per_sm = int(ctas);
  occ.warps_per_sm = int(ctas) * cfg.warps_per_cta;
  return occ;
}

namespace {

struct WarpCost {
  std::uint64_t issue = 0;
  std::uint64_t stall = 0;
};

}  // namespace

KernelStats launch(const DeviceSpec& spec, const LaunchConfig& cfg,
                   const KernelFn& body) {
  if (cfg.num_ctas < 0) throw std::invalid_argument("negative grid size");
  const Occupancy occ = compute_occupancy(spec, cfg);

  KernelStats ks;
  ks.label = cfg.label;
  ks.num_ctas = std::uint64_t(cfg.num_ctas);
  ks.num_warps = std::uint64_t(cfg.num_ctas) * std::uint64_t(cfg.warps_per_cta);
  ks.resident_ctas_per_sm = occ.ctas_per_sm;
  ks.resident_warps_per_sm = occ.warps_per_sm;

  // Functional pass: run every warp, collect per-warp costs. When a
  // Sanitizer is active (resolved once per launch) every access is checked.
  SharedMem shmem(cfg.shared_bytes_per_cta);
  Sanitizer* const san = Sanitizer::active();
  if (san != nullptr) {
    san->begin_launch(cfg.label, shmem.data(), shmem.capacity());
  }
  std::vector<WarpCost> costs(std::size_t(ks.num_warps));
  for (std::int64_t cta = 0; cta < cfg.num_ctas; ++cta) {
    shmem.reset();
    if (san != nullptr) san->begin_cta(cta, cfg.warps_per_cta);
    for (int w = 0; w < cfg.warps_per_cta; ++w) {
      WarpCtx ctx(spec, cta, w, cfg.warps_per_cta, shmem, san);
      body(ctx);
      ctx.finish();
      const WarpStats& s = ctx.stats();
      ks.totals.add(s);
      costs[std::size_t(cta) * std::size_t(cfg.warps_per_cta) + std::size_t(w)] =
          {s.issue_cycles, s.stall_cycles};
    }
    if (san != nullptr) san->end_cta();
  }
  if (san != nullptr) san->end_launch(ks.sanitizer);

  // Scheduling pass: round-robin CTA assignment, wave-based SM timing.
  std::uint64_t makespan = 0;
  const int S = spec.num_sms;
  for (int sm = 0; sm < S && sm < cfg.num_ctas; ++sm) {
    std::uint64_t sm_time = 0;
    for (std::int64_t first = sm; first < cfg.num_ctas;
         first += std::int64_t(S) * occ.ctas_per_sm) {
      // One wave: up to ctas_per_sm CTAs resident together on this SM.
      std::uint64_t wave_issue = 0;
      std::uint64_t wave_stall = 0;
      std::uint64_t wave_crit = 0;
      int wave_warps = 0;
      for (int r = 0; r < occ.ctas_per_sm; ++r) {
        const std::int64_t cta = first + std::int64_t(r) * S;
        if (cta >= cfg.num_ctas) break;
        for (int w = 0; w < cfg.warps_per_cta; ++w) {
          const WarpCost& c =
              costs[std::size_t(cta) * std::size_t(cfg.warps_per_cta) +
                    std::size_t(w)];
          wave_issue += c.issue;
          wave_stall += c.stall;
          wave_crit = std::max(wave_crit, c.issue + c.stall);
          ++wave_warps;
        }
      }
      // Wave time: issue-bandwidth bound; critical (unhideable) warp bound;
      // and the MLP bound — aggregate exposed latency overlapped across at
      // most `latency_hiding_warps` co-resident warps.
      const int hide = std::max(
          1, std::min(wave_warps, spec.latency_hiding_warps));
      sm_time += std::max({wave_issue, wave_crit,
                           wave_stall / std::uint64_t(hide)});
    }
    makespan = std::max(makespan, sm_time);
  }

  std::uint64_t cycles = cfg.launch_overhead_cycles + makespan;
  const auto total_bytes = ks.totals.bytes_loaded + ks.totals.bytes_stored;
  const auto bw_floor = std::uint64_t(double(total_bytes) /
                                      spec.dram_bytes_per_cycle) +
                        cfg.launch_overhead_cycles;
  if (bw_floor > cycles) {
    cycles = bw_floor;
    ks.dram_bandwidth_bound = true;
  }
  ks.cycles = cycles;
  if (Trace* tr = Trace::active()) tr->record(ks);
  return ks;
}

}  // namespace gpusim
