#include "gpusim/launch.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gpusim/sanitizer.h"
#include "gpusim/shared.h"
#include "gpusim/trace.h"
#include "util/thread_pool.h"

namespace gpusim {

Occupancy compute_occupancy(const DeviceSpec& spec, const LaunchConfig& cfg) {
  if (cfg.warps_per_cta <= 0) {
    throw std::invalid_argument("warps_per_cta must be positive");
  }
  if (cfg.shared_bytes_per_cta > spec.shared_mem_per_cta) {
    throw std::invalid_argument("shared memory request exceeds per-CTA limit");
  }
  const int threads_per_cta = cfg.warps_per_cta * kWarpSize;
  std::int64_t by_regs =
      cfg.regs_per_thread > 0
          ? std::int64_t(spec.regs_per_sm) /
                (std::int64_t(cfg.regs_per_thread) * threads_per_cta)
          : spec.max_ctas_per_sm;
  std::int64_t by_smem =
      cfg.shared_bytes_per_cta > 0
          ? std::int64_t(spec.shared_mem_per_sm / cfg.shared_bytes_per_cta)
          : spec.max_ctas_per_sm;
  std::int64_t by_warps = spec.max_warps_per_sm / cfg.warps_per_cta;
  std::int64_t ctas = std::min({std::int64_t(spec.max_ctas_per_sm), by_regs,
                                by_smem, by_warps});
  if (ctas < 1) {
    // Not even one CTA fits on an SM: on hardware this configuration fails
    // at launch time (cudaErrorInvalidConfiguration / too many resources
    // requested), so modeling it as one resident CTA would fabricate
    // residency the device cannot provide.
    std::string why;
    if (by_warps < 1) {
      why = "warps_per_cta (" + std::to_string(cfg.warps_per_cta) +
            ") exceeds max_warps_per_sm (" +
            std::to_string(spec.max_warps_per_sm) + ")";
    } else if (by_regs < 1) {
      why = "register demand (" + std::to_string(cfg.regs_per_thread) +
            " regs x " + std::to_string(threads_per_cta) +
            " threads) exceeds regs_per_sm (" +
            std::to_string(spec.regs_per_sm) + ")";
    } else {
      why = "shared memory demand exceeds shared_mem_per_sm";
    }
    throw std::invalid_argument(
        "launch config cannot fit a single CTA on an SM: " + why);
  }
  Occupancy occ;
  occ.ctas_per_sm = int(ctas);
  occ.warps_per_sm = int(ctas) * cfg.warps_per_cta;
  return occ;
}

namespace {

std::atomic<int> g_host_threads{0};  // 0 = unset (env / hardware default)

int env_host_threads() {
  static const int parsed = [] {
    const char* e = std::getenv("GNNONE_HOST_THREADS");
    if (e != nullptr) {
      const int n = std::atoi(e);
      if (n > 0) return n;
    }
    return 0;
  }();
  return parsed;
}

struct WarpCost {
  std::uint64_t issue = 0;
  std::uint64_t stall = 0;
};

/// One contiguous range of CTAs executed by one worker. Everything a chunk
/// produces is merged (stats, sanitizer) or replayed (atomic commit log) in
/// chunk order == CTA order, which is what makes the parallel functional
/// pass bit-identical to serial execution.
struct ChunkState {
  WarpStats totals;                            // per-warp stats, CTA order
  CommitLog log;                               // deferred atomics, CTA order
  std::vector<SanitizerViolation> violations;  // simsan findings, CTA order
  SanitizerCounters san_counters;
  std::exception_ptr error;
  bool done = false;
};

}  // namespace

int host_threads() {
  const int set = g_host_threads.load(std::memory_order_relaxed);
  if (set > 0) return set;
  const int env = env_host_threads();
  if (env > 0) return env;
  const int hw = int(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

void set_host_threads(int n) {
  g_host_threads.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

KernelStats launch(const DeviceSpec& spec, const LaunchConfig& cfg,
                   const KernelFn& body) {
  if (cfg.num_ctas < 0) throw std::invalid_argument("negative grid size");
  const Occupancy occ = compute_occupancy(spec, cfg);

  KernelStats ks;
  ks.label = cfg.label;
  ks.num_ctas = std::uint64_t(cfg.num_ctas);
  ks.num_warps = std::uint64_t(cfg.num_ctas) * std::uint64_t(cfg.warps_per_cta);
  ks.resident_ctas_per_sm = occ.ctas_per_sm;
  ks.resident_warps_per_sm = occ.warps_per_sm;

  // ---------------------------------------------------------------------
  // Functional pass: run every warp, collect per-warp costs. Independent
  // CTAs execute on host threads; see launch.h for the determinism scheme.
  // When a Sanitizer is active (resolved once per launch) every access is
  // checked through a per-CTA CtaSanitizer.
  // ---------------------------------------------------------------------
  Sanitizer* const san = Sanitizer::active();
  if (san != nullptr) san->begin_launch(cfg.label);

  const std::int64_t n = cfg.num_ctas;
  std::vector<WarpCost> costs(std::size_t(ks.num_warps));

  gnnone::util::ThreadPool& pool = gnnone::util::ThreadPool::global();
  int threads = cfg.host_threads > 0 ? cfg.host_threads : host_threads();
  threads = std::min<std::int64_t>({std::int64_t(threads),
                                    std::int64_t(pool.num_workers()) + 1,
                                    std::max<std::int64_t>(n, 1)});

  // Contiguous CTA chunks: small enough for dynamic load balancing, large
  // enough to amortize the handout. Chunking never affects results — only
  // which worker runs which CTAs.
  const std::int64_t chunk_size =
      std::max<std::int64_t>(1, n / (std::int64_t(threads) * 8));
  const std::int64_t num_chunks =
      n > 0 ? (n + chunk_size - 1) / chunk_size : 0;

  std::vector<ChunkState> chunks(static_cast<std::size_t>(num_chunks));
  std::atomic<std::int64_t> next_chunk{0};
  std::atomic<bool> cancel{false};
  std::mutex commit_mu;
  std::int64_t commit_cursor = 0;  // guarded by commit_mu

  auto worker = [&](int /*worker_id*/) {
    // Per-worker arena + sanitizer state: CTAs on different workers never
    // share mutable simulator state.
    SharedMem shmem(cfg.shared_bytes_per_cta);
    CtaSanitizer csan;
    for (;;) {
      const std::int64_t c = next_chunk.fetch_add(1);
      if (c >= num_chunks) break;
      ChunkState& st = chunks[std::size_t(c)];
      if (!cancel.load(std::memory_order_relaxed)) {
        try {
          const std::int64_t lo = c * chunk_size;
          const std::int64_t hi = std::min(n, lo + chunk_size);
          for (std::int64_t cta = lo; cta < hi; ++cta) {
            shmem.reset();
            if (san != nullptr) {
              // Poison so a read-before-first-write cannot observe another
              // CTA's stale bytes as reproducible-looking data; simsan also
              // reports the read itself (shared-uninit-read).
              shmem.poison();
              csan.begin_cta(*san, cta, cfg.warps_per_cta, shmem.data(),
                             shmem.capacity());
            }
            for (int w = 0; w < cfg.warps_per_cta; ++w) {
              WarpCtx ctx(spec, cta, w, cfg.warps_per_cta, shmem,
                          san != nullptr ? &csan : nullptr, &st.log);
              body(ctx);
              ctx.finish();
              const WarpStats& s = ctx.stats();
              st.totals.add(s);
              costs[std::size_t(cta) * std::size_t(cfg.warps_per_cta) +
                    std::size_t(w)] = {s.issue_cycles, s.stall_cycles};
            }
            if (san != nullptr) csan.end_cta();
          }
        } catch (...) {
          st.error = std::current_exception();
          cancel.store(true, std::memory_order_relaxed);
        }
        if (san != nullptr) csan.drain_into(st.violations, st.san_counters);
      }
      // Ordered streaming commit: whoever completes a chunk replays every
      // ready log at the cursor, so memory for deferred atomics stays
      // bounded by the in-flight chunks instead of the whole launch. The
      // cursor never passes a failed chunk (its predecessors commit, its
      // successors do not — matching where serial execution stopped).
      std::lock_guard<std::mutex> lk(commit_mu);
      st.done = true;
      while (commit_cursor < num_chunks) {
        ChunkState& ready = chunks[std::size_t(commit_cursor)];
        if (!ready.done || ready.error) break;
        for (const AtomicCommit& op : ready.log) op.apply();
        CommitLog().swap(ready.log);
        ++commit_cursor;
      }
    }
  };

  if (threads <= 1) {
    worker(0);
  } else {
    pool.run(threads, worker);
  }

  // Merge in chunk (== CTA) order on the driving thread. On a failed chunk,
  // absorb the sanitizer findings up to and including it (the fatal-mode
  // violation is recorded before its SanitizerError is thrown), then
  // rethrow what serial execution would have hit first.
  for (std::int64_t c = 0; c < num_chunks; ++c) {
    ChunkState& st = chunks[std::size_t(c)];
    if (san != nullptr) {
      san->absorb(std::move(st.violations), st.san_counters);
    }
    if (st.error) std::rethrow_exception(st.error);
    ks.totals.add(st.totals);
  }
  if (san != nullptr) san->end_launch(ks.sanitizer);

  // ---------------------------------------------------------------------
  // Scheduling pass: round-robin CTA assignment, wave-based SM timing.
  // Untouched by host-side parallelism: modeled cycles depend only on the
  // per-warp cost traces above.
  // ---------------------------------------------------------------------
  std::uint64_t makespan = 0;
  const int S = spec.num_sms;
  for (int sm = 0; sm < S && sm < cfg.num_ctas; ++sm) {
    std::uint64_t sm_time = 0;
    for (std::int64_t first = sm; first < cfg.num_ctas;
         first += std::int64_t(S) * occ.ctas_per_sm) {
      // One wave: up to ctas_per_sm CTAs resident together on this SM.
      std::uint64_t wave_issue = 0;
      std::uint64_t wave_stall = 0;
      std::uint64_t wave_crit = 0;
      int wave_warps = 0;
      for (int r = 0; r < occ.ctas_per_sm; ++r) {
        const std::int64_t cta = first + std::int64_t(r) * S;
        if (cta >= cfg.num_ctas) break;
        for (int w = 0; w < cfg.warps_per_cta; ++w) {
          const WarpCost& c =
              costs[std::size_t(cta) * std::size_t(cfg.warps_per_cta) +
                    std::size_t(w)];
          wave_issue += c.issue;
          wave_stall += c.stall;
          wave_crit = std::max(wave_crit, c.issue + c.stall);
          ++wave_warps;
        }
      }
      // Wave time: issue-bandwidth bound; critical (unhideable) warp bound;
      // and the MLP bound — aggregate exposed latency overlapped across at
      // most `latency_hiding_warps` co-resident warps.
      const int hide = std::max(
          1, std::min(wave_warps, spec.latency_hiding_warps));
      sm_time += std::max({wave_issue, wave_crit,
                           wave_stall / std::uint64_t(hide)});
    }
    makespan = std::max(makespan, sm_time);
  }

  std::uint64_t cycles = cfg.launch_overhead_cycles + makespan;
  const auto total_bytes = ks.totals.bytes_loaded + ks.totals.bytes_stored;
  // Ceil the fractional bytes-per-cycle term (the convention dense_op_cycles
  // established): a partially filled cycle still occupies the bus.
  const auto bw_floor = std::uint64_t(std::ceil(double(total_bytes) /
                                                spec.dram_bytes_per_cycle)) +
                        cfg.launch_overhead_cycles;
  if (bw_floor > cycles) {
    cycles = bw_floor;
    ks.dram_bandwidth_bound = true;
  }
  ks.cycles = cycles;
  if (Trace* tr = Trace::active()) tr->record(ks);
  return ks;
}

}  // namespace gpusim
