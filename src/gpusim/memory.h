// Simulated device memory: allocation tracking with out-of-memory behaviour.
//
// Buffers live in ordinary host memory (the simulator runs in-process) but
// every allocation is registered with a DeviceMemory tracker so that the
// paper's OOM experiments (Fig. 6/7: DGL's dual-format storage exhausting the
// 40 GB card while GNNOne's single COO format fits) reproduce as real
// allocation failures rather than hard-coded outcomes.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/device.h"

namespace gpusim {

/// Thrown when a simulated allocation exceeds the device capacity.
class DeviceOutOfMemory : public std::runtime_error {
 public:
  DeviceOutOfMemory(std::size_t requested, std::size_t in_use,
                    std::size_t capacity)
      : std::runtime_error("device out of memory: requested " +
                           std::to_string(requested) + " B with " +
                           std::to_string(in_use) + "/" +
                           std::to_string(capacity) + " B in use"),
        requested_(requested) {}
  std::size_t requested() const { return requested_; }

 private:
  std::size_t requested_;
};

/// Tracks simulated device-memory usage. Not thread-safe (the simulator is
/// single-threaded by design; determinism is a feature).
class DeviceMemory {
 public:
  explicit DeviceMemory(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Registers an allocation; throws DeviceOutOfMemory when it does not fit.
  void allocate(std::size_t bytes) {
    if (in_use_ + bytes > capacity_) {
      throw DeviceOutOfMemory(bytes, in_use_, capacity_);
    }
    in_use_ += bytes;
    peak_ = in_use_ > peak_ ? in_use_ : peak_;
  }

  void release(std::size_t bytes) {
    in_use_ = bytes > in_use_ ? 0 : in_use_ - bytes;
  }

  std::size_t in_use() const { return in_use_; }
  std::size_t peak() const { return peak_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
};

/// A typed device buffer. Owns host storage and a registration with a
/// DeviceMemory tracker (optional: a null tracker means "untracked scratch").
template <typename T>
class Buffer {
 public:
  Buffer() = default;

  explicit Buffer(std::size_t n, DeviceMemory* tracker = nullptr)
      : data_(n), tracker_(tracker) {
    if (tracker_ != nullptr) tracker_->allocate(bytes());
  }

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  Buffer(Buffer&& other) noexcept { *this = std::move(other); }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      unregister();
      data_ = std::move(other.data_);
      tracker_ = other.tracker_;
      other.tracker_ = nullptr;
      other.data_.clear();
    }
    return *this;
  }

  ~Buffer() { unregister(); }

  std::size_t size() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * sizeof(T); }
  bool empty() const { return data_.empty(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  void unregister() {
    if (tracker_ != nullptr) {
      tracker_->release(bytes());
      tracker_ = nullptr;
    }
  }

  std::vector<T> data_;
  DeviceMemory* tracker_ = nullptr;
};

}  // namespace gpusim
