// Simulated device memory: allocation tracking with out-of-memory behaviour.
//
// Buffers live in ordinary host memory (the simulator runs in-process) but
// every allocation is registered with a DeviceMemory tracker so that the
// paper's OOM experiments (Fig. 6/7: DGL's dual-format storage exhausting the
// 40 GB card while GNNOne's single COO format fits) reproduce as real
// allocation failures rather than hard-coded outcomes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/sanitizer.h"

namespace gpusim {

/// Thrown when a simulated allocation exceeds the device capacity.
class DeviceOutOfMemory : public std::runtime_error {
 public:
  DeviceOutOfMemory(std::size_t requested, std::size_t in_use,
                    std::size_t capacity)
      : std::runtime_error("device out of memory: requested " +
                           std::to_string(requested) + " B with " +
                           std::to_string(in_use) + "/" +
                           std::to_string(capacity) + " B in use"),
        requested_(requested) {}
  std::size_t requested() const { return requested_; }

 private:
  std::size_t requested_;
};

/// Tracks simulated device-memory usage. Not thread-safe by itself, and it
/// does not need to be: allocation/release happen on the thread driving the
/// simulation (kernel *launch* order), which stays serial even when the
/// functional pass inside a launch fans CTAs out across host threads
/// (gpusim::set_host_threads / GNNONE_HOST_THREADS). Kernels never allocate
/// mid-launch, so the allocation sequence — and therefore fault-injection
/// ordering — is identical at every thread count.
///
/// Fault injection: tests drive the OOM error paths deterministically by
/// arming fail_at_allocation() (the n-th future allocate() throws) or
/// fail_above() (allocations pushing usage past a watermark throw), instead
/// of having to construct workloads that genuinely exhaust the capacity.
class DeviceMemory {
 public:
  explicit DeviceMemory(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Registers an allocation; throws DeviceOutOfMemory when it does not fit
  /// or an injected fault fires.
  void allocate(std::size_t bytes) {
    ++allocations_;
    const bool injected =
        (fail_at_ != 0 && allocations_ == fail_at_) ||
        in_use_ + bytes > fail_watermark_;
    if (injected || in_use_ + bytes > capacity_) {
      throw DeviceOutOfMemory(bytes, in_use_, capacity_);
    }
    in_use_ += bytes;
    peak_ = in_use_ > peak_ ? in_use_ : peak_;
  }

  /// Releasing more than is in use is an accounting bug (double release).
  /// Under an active Sanitizer it throws SanitizerError; otherwise the
  /// event is counted (release_underflows) and usage clamps to zero so
  /// legacy behaviour is preserved.
  void release(std::size_t bytes) {
    if (bytes > in_use_) {
      ++release_underflows_;
      const std::size_t was = in_use_;
      in_use_ = 0;
      if (Sanitizer* san = Sanitizer::active()) {
        san->on_release_underflow(bytes, was);  // records, then throws
      }
      return;
    }
    in_use_ -= bytes;
  }

  /// Arms a one-shot fault: the n-th allocate() from now (1-based) throws
  /// DeviceOutOfMemory regardless of capacity. n = 0 disarms.
  void fail_at_allocation(std::uint64_t nth) {
    fail_at_ = nth == 0 ? 0 : allocations_ + nth;
  }

  /// Any allocation that would push usage above `watermark_bytes` throws.
  void fail_above(std::size_t watermark_bytes) {
    fail_watermark_ = watermark_bytes;
  }

  /// Disarms all injected faults.
  void clear_faults() {
    fail_at_ = 0;
    fail_watermark_ = std::numeric_limits<std::size_t>::max();
  }

  std::size_t in_use() const { return in_use_; }
  std::size_t peak() const { return peak_; }
  std::size_t capacity() const { return capacity_; }
  /// Total allocate() calls observed (successful or not).
  std::uint64_t allocation_count() const { return allocations_; }
  /// Times release() was called with more bytes than were in use.
  std::uint64_t release_underflows() const { return release_underflows_; }

 private:
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t release_underflows_ = 0;
  std::uint64_t fail_at_ = 0;
  std::size_t fail_watermark_ = std::numeric_limits<std::size_t>::max();
};

/// RAII registration of `bytes` against a tracker without owning storage —
/// for accounting workloads whose data lives elsewhere (e.g. the training
/// harness charging each of its allocation sites so injected OOM faults
/// unwind with no leaked bytes).
class DeviceAllocation {
 public:
  DeviceAllocation() = default;
  DeviceAllocation(DeviceMemory& mem, std::size_t bytes)
      : mem_(&mem), bytes_(bytes) {
    mem.allocate(bytes);
  }

  DeviceAllocation(const DeviceAllocation&) = delete;
  DeviceAllocation& operator=(const DeviceAllocation&) = delete;

  DeviceAllocation(DeviceAllocation&& other) noexcept
      : mem_(other.mem_), bytes_(other.bytes_) {
    other.mem_ = nullptr;
  }
  DeviceAllocation& operator=(DeviceAllocation&& other) noexcept {
    if (this != &other) {
      release();
      mem_ = other.mem_;
      bytes_ = other.bytes_;
      other.mem_ = nullptr;
    }
    return *this;
  }

  ~DeviceAllocation() { release(); }

  void release() {
    if (mem_ != nullptr) {
      mem_->release(bytes_);
      mem_ = nullptr;
    }
  }

  std::size_t bytes() const { return mem_ != nullptr ? bytes_ : 0; }

 private:
  DeviceMemory* mem_ = nullptr;
  std::size_t bytes_ = 0;
};

/// A typed device buffer. Owns host storage and a registration with a
/// DeviceMemory tracker (optional: a null tracker means "untracked scratch").
template <typename T>
class Buffer {
 public:
  Buffer() = default;

  explicit Buffer(std::size_t n, DeviceMemory* tracker = nullptr)
      : data_(n), tracker_(tracker) {
    if (tracker_ != nullptr) tracker_->allocate(bytes());
    if (Sanitizer* san = Sanitizer::active()) {
      san->track(data_.data(), bytes(), "Buffer");
    }
  }

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  Buffer(Buffer&& other) noexcept { *this = std::move(other); }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      unregister();
      data_ = std::move(other.data_);
      tracker_ = other.tracker_;
      other.tracker_ = nullptr;
      other.data_.clear();
    }
    return *this;
  }

  ~Buffer() { unregister(); }

  std::size_t size() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * sizeof(T); }
  bool empty() const { return data_.empty(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  void unregister() {
    if (Sanitizer* san = Sanitizer::active()) san->untrack(data_.data());
    if (tracker_ != nullptr) {
      // Swallow accounting errors here: the violation is already recorded
      // in the sanitizer report, and destructors must not throw.
      try {
        tracker_->release(bytes());
      } catch (const SanitizerError&) {
      }
      tracker_ = nullptr;
    }
  }

  std::vector<T> data_;
  DeviceMemory* tracker_ = nullptr;
};

}  // namespace gpusim
