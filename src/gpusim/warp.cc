#include "gpusim/warp.h"

#include <algorithm>

namespace gpusim::detail {

int count_transactions(const LaneArray<std::uint64_t>& addr, Mask mask) {
  std::array<std::uint64_t, kWarpSize> segs;
  int n = 0;
  for (int l = 0; l < kWarpSize; ++l) {
    if (mask >> l & 1u) segs[n++] = addr[l] / kTransactionBytes;
  }
  if (n == 0) return 0;
  std::sort(segs.begin(), segs.begin() + n);
  int distinct = 1;
  for (int i = 1; i < n; ++i) {
    if (segs[i] != segs[i - 1]) ++distinct;
  }
  return distinct;
}

}  // namespace gpusim::detail
