// Full-batch GNN training harness: runs real optimization (for the Fig. 5
// accuracy experiment) while charging every dense and sparse op to a cycle
// ledger (for the Fig. 6/7 training-time experiments).
//
// OOM behaviour is evaluated at the *paper's* dataset scale: the scaled
// stand-in graphs always fit, so the footprint of every tensor the backend
// would allocate on the real dataset is computed against the simulated 40 GB
// card. This is how Fig. 7's asymmetry (GNNOne trains uk-2002, DGL does not)
// reproduces as an accounting fact rather than a hard-coded outcome.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "gnn/backends.h"
#include "gnn/models.h"
#include "gpusim/memory.h"
#include "serve/status.h"

namespace gnnone {

struct TrainOptions {
  int epochs = 200;           // reported horizon (the paper trains 200)
  int measured_epochs = 4;    // epochs actually simulated; cost per epoch is
                              // deterministic, so the rest extrapolates
  float lr = 0.01f;
  float train_fraction = 0.5f;
  std::uint64_t seed = 1;
  /// Overrides the dataset's input feature length (0 = use Table 1's F).
  int feature_dim_override = 0;
  bool eval_accuracy = true;
  /// External device-memory tracker. Every allocation the harness makes is
  /// charged against it, so injected faults (fail_at_allocation /
  /// fail_above) drive the OOM error paths deterministically. Null = use a
  /// private tracker sized to the device.
  gpusim::DeviceMemory* device_memory = nullptr;
  /// Fault injection: poisons the loss with NaN at this measured epoch
  /// (-1 = never) to exercise the divergence guard.
  int inject_nan_at_epoch = -1;
  /// Backend::kAuto: pretuned cache the dispatcher consults (caller keeps
  /// ownership; null = dispatch on heuristics / online tuning alone).
  const tune::TuningCache* tuning_cache = nullptr;
  /// Backend::kAuto: tune cache-missed launches on the spot.
  bool online_tune = false;
};

struct TrainResult {
  bool ran = false;
  std::string fail_reason;  // "OOM", "unsupported", "diverged", or empty
  /// fail_reason mapped onto the serving error taxonomy, so the training
  /// and serving harnesses report failures in one vocabulary
  /// (serve/status.h — header-only, so this adds no link dependency).
  serve::Status status() const {
    return serve::status_from_fail_reason(fail_reason);
  }
  double final_accuracy = 0.0;
  std::vector<double> accuracy_curve;  // per measured epoch
  std::uint64_t cycles_per_epoch = 0;
  std::uint64_t total_cycles = 0;      // cycles_per_epoch * epochs
  std::uint64_t spmm_cycles = 0;
  std::uint64_t sddmm_cycles = 0;
  std::uint64_t dense_cycles = 0;
  std::size_t paper_footprint_bytes = 0;
};

/// Device bytes the backend would allocate training `model_kind` on the
/// dataset at the paper's original scale (see implementation for the
/// component breakdown, including DGL's dual-format int64 topology).
std::size_t paper_scale_footprint(Backend b, const Dataset& d,
                                  const std::string& model_kind);

/// Trains `model_kind` in {"gcn", "gin", "gat"} on the dataset with the
/// given backend. Returns fail_reason "OOM" / "unsupported" without running
/// when the paper-scale footprint exceeds the device or the backend cannot
/// handle the graph class.
TrainResult train_model(Backend backend, const Dataset& ds,
                        const std::string& model_kind,
                        const gpusim::DeviceSpec& dev,
                        const TrainOptions& opts = {});

}  // namespace gnnone
