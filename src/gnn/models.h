// The three GNN models of the paper's training evaluation (§5.3): 2-layer
// GCN (hidden 16), 5-layer GIN (hidden 64), 5-layer GAT (hidden 16).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gnn/layers.h"

namespace gnnone {

struct ModelConfig {
  std::int64_t in_dim = 0;
  std::int64_t hidden = 16;
  std::int64_t num_classes = 0;
  int num_layers = 2;
  float dropout = 0.5f;
};

class GnnModel {
 public:
  virtual ~GnnModel() = default;
  /// Returns per-vertex log-probabilities (|V| x classes).
  virtual VarPtr forward(const OpContext& ctx, SparseEngine& engine,
                         const VarPtr& x, std::uint64_t epoch_seed) = 0;
  virtual std::vector<VarPtr> params() const = 0;
  virtual std::string name() const = 0;
};

std::unique_ptr<GnnModel> make_gcn(const SparseEngine& engine,
                                   const ModelConfig& cfg);
std::unique_ptr<GnnModel> make_gin(const ModelConfig& cfg);
std::unique_ptr<GnnModel> make_gat(const ModelConfig& cfg);

/// Paper §5.3 configurations.
ModelConfig paper_gcn_config(std::int64_t in_dim, std::int64_t classes);
ModelConfig paper_gin_config(std::int64_t in_dim, std::int64_t classes);
ModelConfig paper_gat_config(std::int64_t in_dim, std::int64_t classes);

/// Paper configuration for a model kind in {"gcn", "gin", "gat"}; throws
/// std::invalid_argument on anything else. Shared by the training harness
/// and the inference server so both build identical models.
ModelConfig model_config_for(const std::string& kind, std::int64_t in_dim,
                             std::int64_t classes);

/// Builds a model of `kind`. Weights are glorot-initialized from fixed
/// per-layer seeds, so two calls with equal (kind, cfg) produce identical
/// parameters — the serving path relies on this as its checkpoint stand-in
/// when it rebuilds the model per minibatch subgraph.
std::unique_ptr<GnnModel> make_model(const std::string& kind,
                                     const SparseEngine& engine,
                                     const ModelConfig& cfg);

}  // namespace gnnone
