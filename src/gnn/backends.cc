#include "gnn/backends.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "graph/convert.h"
#include "kernels/baselines.h"
#include "kernels/gnnone.h"
#include "kernels/gnnone_fused.h"
#include "tensor/dense_cost.h"

namespace gnnone {

std::string backend_name(Backend b) {
  switch (b) {
    case Backend::kGnnOne: return "GnnOne";
    case Backend::kGnnOneFused: return "GnnOne+fusion";
    case Backend::kDgl: return "DGL";
    case Backend::kDgnn: return "dgNN";
    case Backend::kAuto: return "Auto";
  }
  return "?";
}

namespace {
bool uses_coo_kernels(Backend b) {
  return b == Backend::kGnnOne || b == Backend::kGnnOneFused;
}
}  // namespace

SparseEngine::SparseEngine(Backend backend, const Coo& coo,
                           const gpusim::DeviceSpec& dev)
    : backend_(backend), dev_(dev), coo_(coo) {
  auto [t, perm] = coo_transpose(coo_);
  coo_t_ = std::move(t);
  perm_ = std::move(perm);
  if (!uses_coo_kernels(backend_)) {
    csr_ = coo_to_csr(coo_);
    csr_t_ = coo_to_csr(coo_t_);
  }
  if (backend_ == Backend::kAuto) {
    // The dispatcher may route any launch to any family, so every format a
    // candidate could need stays resident; the lookup keys are precomputed.
    ng_ = build_neighbor_groups(csr_);
    ng_t_ = build_neighbor_groups(csr_t_);
    sig_ = tune::signature_of(coo_);
    sig_t_ = tune::signature_of(coo_t_);
    device_key_ = tune::device_key(dev);
  }
}

tune::Candidate SparseEngine::auto_candidate(const Coo& coo, tune::TuneOp op,
                                             int f) const {
  const bool forward = &coo == &coo_;
  tune::TuneKey key;
  key.signature = forward ? sig_ : sig_t_;
  key.op = op;
  key.dim = op == tune::TuneOp::kSpmv ? 1 : f;
  key.device = device_key_;

  // Lookup chain: exact pretuned hit, then this session's online decisions,
  // then the nearest pretuned signature, then (optionally) tune right now,
  // and finally the structural heuristic.
  if (tuning_cache_ != nullptr) {
    if (const tune::TuneDecision* d = tuning_cache_->lookup(key)) {
      return d->candidate;
    }
  }
  if (const tune::TuneDecision* d = session_.lookup(key)) {
    return d->candidate;
  }
  if (tuning_cache_ != nullptr) {
    if (const tune::TuneDecision* d = tuning_cache_->lookup_nearest(key)) {
      return d->candidate;
    }
  }
  if (online_tune_) {
    return tune::tune_into(session_, dev_, coo, op, key.dim, {})
        .best.candidate;
  }
  // Cold-miss heuristic: near-uniform graphs don't need GNNOne's balancing,
  // and the vertex-parallel row split wins back its staging overhead; every
  // other structure gets the GNNOne default.
  const tune::GraphSignature& sig = key.signature;
  if (op == tune::TuneOp::kSpmm && sig.skew == tune::SkewBucket::kUniform) {
    return tune::family_default(op, tune::KernelFamily::kVertexParallel);
  }
  return tune::family_default(op, tune::KernelFamily::kGnnOne);
}

std::size_t SparseEngine::graph_bytes() const {
  switch (backend_) {
    case Backend::kGnnOne:
    case Backend::kGnnOneFused:
      // Single standard format: COO forward + COO transpose.
      return coo_.device_bytes() + coo_t_.device_bytes();
    case Backend::kDgl:
      // CSR (SpMM) + COO (SDDMM), both directions (paper §3.1: DGL's dual
      // format leads to excessive memory consumption).
      return csr_.device_bytes() + csr_t_.device_bytes() +
             coo_.device_bytes() + coo_t_.device_bytes();
    case Backend::kDgnn:
      return csr_.device_bytes() + csr_t_.device_bytes();
    case Backend::kAuto:
      // The price of dispatch freedom: every format any candidate family
      // could pick, both directions.
      return coo_.device_bytes() + coo_t_.device_bytes() +
             csr_.device_bytes() + csr_t_.device_bytes() +
             ng_.device_bytes() + ng_t_.device_bytes();
  }
  return 0;
}

void SparseEngine::begin_fused() {
  if (backend_ != Backend::kDgnn) return;  // only dgNN fuses kernels
  fused_ = true;
  fused_first_ = true;
}

void SparseEngine::end_fused() { fused_ = false; }

void SparseEngine::charge(const OpContext& ctx, const char* tag,
                          const gpusim::KernelStats& ks) const {
  std::uint64_t cycles = ks.cycles;
  if (fused_) {
    if (!fused_first_) {
      // dgNN's kernel fusion: later kernels in the region share the launch.
      const std::uint64_t rebate = 2000;
      cycles -= std::min(cycles, rebate);
    }
    fused_first_ = false;
  }
  ctx.charge(tag, cycles);
}

Tensor SparseEngine::run_spmm(const OpContext& ctx, const Coo& coo,
                              const Csr& csr, std::span<const float> ev,
                              const Tensor& x) const {
  const int f = int(x.cols());
  Tensor out(coo.num_rows, f);
  if (coo.nnz() == 0) return out;
  gpusim::KernelStats ks;
  if (backend_ == Backend::kAuto) {
    const bool forward = &coo == &coo_;
    const tune::OpInputs in{&coo, &csr, forward ? &ng_ : &ng_t_};
    ks = tune::run_candidate(dev_,
                             auto_candidate(coo, tune::TuneOp::kSpmm, f),
                             tune::TuneOp::kSpmm, in, ev, x.flat(), {}, f,
                             out.flat());
  } else if (uses_coo_kernels(backend_)) {
    ks = gnnone_spmm(dev_, coo, ev, x.flat(), f, out.flat());
  } else {
    ks = baselines::cusparse_spmm(dev_, csr, ev, x.flat(), f, out.flat());
  }
  charge(ctx, "spmm", ks);
  return out;
}

Tensor SparseEngine::run_sddmm(const OpContext& ctx, const Tensor& x,
                               const Tensor& y) const {
  const int f = int(x.cols());
  Tensor out(coo_.nnz(), 1);
  if (coo_.nnz() == 0) return out;
  gpusim::KernelStats ks;
  switch (backend_) {
    case Backend::kGnnOne:
    case Backend::kGnnOneFused:
      ks = gnnone_sddmm(dev_, coo_, x.flat(), y.flat(), f, out.flat());
      break;
    case Backend::kDgl:
      ks = baselines::dgl_sddmm(dev_, coo_, x.flat(), y.flat(), f,
                                out.flat());
      break;
    case Backend::kDgnn:
      ks = baselines::dgsparse_sddmm(dev_, csr_, x.flat(), y.flat(), f,
                                     out.flat());
      break;
    case Backend::kAuto: {
      // SDDMM always runs on the forward graph (row = destination).
      const tune::OpInputs in{&coo_, &csr_, &ng_};
      ks = tune::run_candidate(dev_,
                               auto_candidate(coo_, tune::TuneOp::kSddmm, f),
                               tune::TuneOp::kSddmm, in, {}, x.flat(),
                               y.flat(), f, out.flat());
      break;
    }
  }
  charge(ctx, "sddmm", ks);
  return out;
}

VarPtr SparseEngine::spmm(const OpContext& ctx, const VarPtr& edge_w,
                          const VarPtr& x) {
  assert(x->value.rows() == coo_.num_cols);
  assert(edge_w == nullptr || edge_w->value.numel() == coo_.nnz());

  std::vector<float> ones;
  std::span<const float> ev;
  if (edge_w != nullptr) {
    ev = edge_w->value.flat();
  } else {
    ones.assign(std::size_t(coo_.nnz()), 1.0f);
    ev = ones;
  }
  Tensor out = run_spmm(ctx, coo_, csr_, ev, x->value);

  std::vector<VarPtr> parents = edge_w != nullptr
                                    ? std::vector<VarPtr>{x, edge_w}
                                    : std::vector<VarPtr>{x};
  auto node = make_op(std::move(out), parents, nullptr);
  Variable* n = node.get();
  Variable* xv = x.get();
  Variable* wv = edge_w != nullptr ? edge_w.get() : nullptr;
  // Keep the unweighted forward values alive for the backward closure.
  auto ones_keep = std::make_shared<std::vector<float>>(std::move(ones));
  node->backward_fn = [this, ctx, n, xv, wv, ones_keep]() {
    if (xv->requires_grad) {
      // dX = A^T * dY: SpMM on the transposed graph with permuted weights.
      std::vector<float> evt(std::size_t(coo_t_.nnz()));
      for (std::size_t i = 0; i < evt.size(); ++i) {
        evt[i] = wv != nullptr ? wv->value[std::size_t(perm_[i])]
                               : (*ones_keep)[std::size_t(perm_[i])];
      }
      const Tensor dx = run_spmm(ctx, coo_t_, csr_t_, evt, n->grad);
      for (std::size_t i = 0; i < std::size_t(dx.numel()); ++i) {
        xv->grad[i] += dx[i];
      }
    }
    if (wv != nullptr && wv->requires_grad) {
      // dW[e] = dot(dY[row e], X[col e]): the SDDMM the paper pairs with
      // SpMM in back-propagation (§1).
      const Tensor dw = run_sddmm(ctx, n->grad, xv->value);
      for (std::size_t i = 0; i < std::size_t(dw.numel()); ++i) {
        wv->grad[i] += dw[i];
      }
    }
  };
  return node;
}

VarPtr SparseEngine::sddmm(const OpContext& ctx, const VarPtr& x,
                           const VarPtr& y) {
  assert(x->value.rows() == coo_.num_rows);
  assert(y->value.rows() == coo_.num_cols);
  assert(x->value.cols() == y->value.cols());
  Tensor out = run_sddmm(ctx, x->value, y->value);

  auto node = make_op(std::move(out), {x, y}, nullptr);
  Variable* n = node.get();
  Variable* xv = x.get();
  Variable* yv = y.get();
  node->backward_fn = [this, ctx, n, xv, yv]() {
    if (xv->requires_grad) {
      // dX = A(dw) * Y on the forward graph.
      const Tensor dx = run_spmm(ctx, coo_, csr_, n->grad.flat(), yv->value);
      for (std::size_t i = 0; i < std::size_t(dx.numel()); ++i) {
        xv->grad[i] += dx[i];
      }
    }
    if (yv->requires_grad) {
      std::vector<float> dwt(std::size_t(coo_t_.nnz()));
      for (std::size_t i = 0; i < dwt.size(); ++i) {
        dwt[i] = n->grad[std::size_t(perm_[i])];
      }
      const Tensor dy = run_spmm(ctx, coo_t_, csr_t_, dwt, xv->value);
      for (std::size_t i = 0; i < std::size_t(dy.numel()); ++i) {
        yv->grad[i] += dy[i];
      }
    }
  };
  return node;
}

VarPtr SparseEngine::u_add_v(const OpContext& ctx, const VarPtr& src_score,
                             const VarPtr& dst_score) {
  assert(src_score->value.rows() == coo_.num_rows);
  assert(dst_score->value.rows() == coo_.num_rows);
  assert(src_score->value.cols() == 1 && dst_score->value.cols() == 1);
  const vid_t n_v = coo_.num_rows;

  // Feature-length-2 SDDMM: dot([d_r, 1], [1, s_c]) = d_r + s_c. Row = the
  // aggregating destination, col = message source.
  Tensor xr(n_v, 2), yc(n_v, 2);
  for (vid_t v = 0; v < n_v; ++v) {
    xr.at(v, 0) = dst_score->value.at(v, 0);
    xr.at(v, 1) = 1.0f;
    yc.at(v, 0) = 1.0f;
    yc.at(v, 1) = src_score->value.at(v, 0);
  }
  Tensor out = run_sddmm(ctx, xr, yc);

  auto node = make_op(std::move(out), {src_score, dst_score}, nullptr);
  Variable* n = node.get();
  Variable* sv = src_score.get();
  Variable* dv = dst_score.get();
  node->backward_fn = [this, ctx, n, sv, dv]() {
    Tensor vones(coo_.num_rows, 1, 1.0f);
    if (dv->requires_grad) {
      // d dst[r] = sum of de over row r: f=1 SpMM with de as edge values.
      const Tensor g = run_spmm(ctx, coo_, csr_, n->grad.flat(), vones);
      for (std::size_t i = 0; i < std::size_t(g.numel()); ++i) {
        dv->grad[i] += g[i];
      }
    }
    if (sv->requires_grad) {
      std::vector<float> det(std::size_t(coo_t_.nnz()));
      for (std::size_t i = 0; i < det.size(); ++i) {
        det[i] = n->grad[std::size_t(perm_[i])];
      }
      const Tensor g = run_spmm(ctx, coo_t_, csr_t_, det, vones);
      for (std::size_t i = 0; i < std::size_t(g.numel()); ++i) {
        sv->grad[i] += g[i];
      }
    }
  };
  return node;
}

VarPtr SparseEngine::edge_softmax(const OpContext& ctx, const VarPtr& scores) {
  assert(scores->value.numel() == coo_.nnz());
  const auto nnz = std::size_t(coo_.nnz());
  const auto rows = std::size_t(coo_.num_rows);

  // Functional segment softmax over each destination row's incoming edges.
  std::vector<float> mx(rows, -1e30f);
  for (std::size_t e = 0; e < nnz; ++e) {
    mx[std::size_t(coo_.row[e])] =
        std::max(mx[std::size_t(coo_.row[e])], scores->value[e]);
  }
  Tensor z(coo_.nnz(), 1);
  for (std::size_t e = 0; e < nnz; ++e) {
    z[e] = std::exp(scores->value[e] - mx[std::size_t(coo_.row[e])]);
  }
  // Frameworks implement edge softmax as two segment reductions (max for
  // stability, then the sum of exponentials) plus elementwise passes; both
  // reductions run as real f=1 SpMM-shaped kernels on the backend.
  Tensor vones(coo_.num_rows, 1, 1.0f);
  const Tensor maxes = run_spmm(ctx, coo_, csr_, scores->value.flat(), vones);
  (void)maxes;  // segment max computed functionally above; cost charged here
  const Tensor sums = run_spmm(ctx, coo_, csr_, z.flat(), vones);
  ctx.charge("edge_elem", elementwise_cycles(dev_, coo_.nnz()) * 2);
  Tensor out(coo_.nnz(), 1);
  for (std::size_t e = 0; e < nnz; ++e) {
    const float s = sums[std::size_t(coo_.row[e])];
    out[e] = s > 0.0f ? z[e] / s : 0.0f;
  }

  auto node = make_op(std::move(out), {scores}, nullptr);
  Variable* n = node.get();
  Variable* sv = scores.get();
  node->backward_fn = [this, ctx, n, sv]() {
    if (!sv->requires_grad) return;
    const auto m = std::size_t(coo_.nnz());
    // ds = alpha * (dalpha - sum_seg(alpha * dalpha)); the segment sum is
    // another f=1 SpMM.
    std::vector<float> ad(m);
    for (std::size_t e = 0; e < m; ++e) ad[e] = n->value[e] * n->grad[e];
    Tensor vones(coo_.num_rows, 1, 1.0f);
    const Tensor seg = run_spmm(ctx, coo_, csr_, ad, vones);
    ctx.charge("edge_elem", elementwise_cycles(dev_, coo_.nnz()));
    for (std::size_t e = 0; e < m; ++e) {
      sv->grad[e] +=
          n->value[e] * (n->grad[e] - seg[std::size_t(coo_.row[e])]);
    }
  };
  return node;
}

VarPtr SparseEngine::fused_attention(const OpContext& ctx,
                                     const VarPtr& s_src,
                                     const VarPtr& s_dst, const VarPtr& h,
                                     float leaky_slope) {
  assert(backend_ == Backend::kGnnOneFused);
  assert(s_src->value.rows() == coo_.num_rows && s_src->value.cols() == 1);
  assert(s_dst->value.rows() == coo_.num_rows && s_dst->value.cols() == 1);
  assert(h->value.rows() == coo_.num_cols);
  const int f = int(h->value.cols());

  auto alpha = std::make_shared<Tensor>(coo_.nnz(), 1);
  Tensor out(coo_.num_rows, f);
  if (coo_.nnz() > 0) {
    const FusedAttentionStats fs = gnnone_fused_attention(
        dev_, coo_, s_src->value.flat(), s_dst->value.flat(),
        h->value.flat(), f, leaky_slope, alpha->flat(), out.flat());
    charge(ctx, "sddmm", fs.max_pass);
    charge(ctx, "sddmm", fs.logit_pass);
    charge(ctx, "spmm", fs.aggregate_pass);
  }

  auto node = make_op(std::move(out), {s_src, s_dst, h}, nullptr);
  Variable* n = node.get();
  Variable* sv = s_src.get();
  Variable* dv = s_dst.get();
  Variable* hv = h.get();
  // Backward reuses the individual kernels (forward-only fusion).
  node->backward_fn = [this, ctx, n, sv, dv, hv, alpha, leaky_slope, f]() {
    const auto nnz = std::size_t(coo_.nnz());
    if (nnz == 0) return;
    // dh = A(alpha)^T * dout.
    if (hv->requires_grad) {
      std::vector<float> at(nnz);
      for (std::size_t i = 0; i < nnz; ++i) {
        at[i] = (*alpha)[std::size_t(perm_[i])];
      }
      const Tensor dh = run_spmm(ctx, coo_t_, csr_t_, at, n->grad);
      for (std::size_t i = 0; i < std::size_t(dh.numel()); ++i) {
        hv->grad[i] += dh[i];
      }
    }
    // dalpha[e] = dot(dout[row e], h[col e]).
    const Tensor dalpha = run_sddmm(ctx, n->grad, hv->value);
    // Softmax backward: dlogit = alpha * (dalpha - seg_sum(alpha * dalpha)).
    std::vector<float> ad(nnz);
    for (std::size_t e = 0; e < nnz; ++e) ad[e] = (*alpha)[e] * dalpha[e];
    Tensor vones(coo_.num_rows, 1, 1.0f);
    const Tensor seg = run_spmm(ctx, coo_, csr_, ad, vones);
    std::vector<float> dlogit(nnz);
    for (std::size_t e = 0; e < nnz; ++e) {
      const float ds =
          (*alpha)[e] * (dalpha[e] - seg[std::size_t(coo_.row[e])]);
      const float v = sv->value[std::size_t(coo_.col[e])] +
                      dv->value[std::size_t(coo_.row[e])];
      dlogit[e] = ds * (v >= 0.0f ? 1.0f : leaky_slope);
    }
    ctx.charge("edge_elem", elementwise_cycles(dev_, coo_.nnz()) * 2);
    // Scatter to the score vectors (f=1 SpMMs, forward + transposed).
    if (dv->requires_grad) {
      const Tensor g = run_spmm(ctx, coo_, csr_, dlogit, vones);
      for (std::size_t i = 0; i < std::size_t(g.numel()); ++i) {
        dv->grad[i] += g[i];
      }
    }
    if (sv->requires_grad) {
      std::vector<float> dlt(nnz);
      for (std::size_t i = 0; i < nnz; ++i) {
        dlt[i] = dlogit[std::size_t(perm_[i])];
      }
      const Tensor g = run_spmm(ctx, coo_t_, csr_t_, dlt, vones);
      for (std::size_t i = 0; i < std::size_t(g.numel()); ++i) {
        sv->grad[i] += g[i];
      }
    }
  };
  return node;
}

bool SparseEngine::supports(Backend b, const Dataset& d) {
  if (b == Backend::kDgnn && d.family == GraphFamily::kKronecker) {
    // Reproduces the paper's report (Fig. 6): dgNN produced an error while
    // training Kron-21; its fused kernel does not survive the Kronecker
    // degree distribution at the paper's scale.
    return false;
  }
  return true;
}

}  // namespace gnnone
