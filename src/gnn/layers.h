// GNN layers composed from dense autograd ops and the SparseEngine's
// sparse autograd ops. All three model families of the paper's §5.3.
#pragma once

#include <cstdint>
#include <vector>

#include "gnn/backends.h"
#include "tensor/ops.h"

namespace gnnone {

/// Glorot-uniform initialized weight (deterministic per seed).
VarPtr glorot(std::int64_t rows, std::int64_t cols, std::uint64_t seed,
              const std::string& name);

/// GCN convolution: Y = Â (X W) + b with Â the symmetric-normalized
/// adjacency (static edge weights; GCN's backward needs only SpMM — §2).
class GcnConv {
 public:
  GcnConv(const SparseEngine& engine, std::int64_t in, std::int64_t out,
          std::uint64_t seed);
  VarPtr forward(const OpContext& ctx, SparseEngine& engine,
                 const VarPtr& x) const;
  std::vector<VarPtr> params() const { return {weight_, bias_}; }

 private:
  VarPtr weight_, bias_;
  VarPtr norm_w_;  // |E| x 1 constant 1/sqrt(deg_r * deg_c)
};

/// GIN convolution: Y = MLP((1 + eps) X + sum-aggregate(X)).
class GinConv {
 public:
  GinConv(std::int64_t in, std::int64_t out, std::uint64_t seed,
          float eps = 0.0f, bool normalize = true);
  VarPtr forward(const OpContext& ctx, SparseEngine& engine,
                 const VarPtr& x) const;
  std::vector<VarPtr> params() const { return {w1_, b1_, w2_, b2_}; }

 private:
  VarPtr w1_, b1_, w2_, b2_;
  float eps_;
  bool normalize_;  // BatchNorm-style standardization after the MLP
};

/// Single-head GAT convolution: attention logits via a feature-length-2
/// SDDMM (u_add_v), LeakyReLU, edge softmax, then attention-weighted SpMM —
/// the SDDMM+SpMM pairing that motivates the paper (§3.1).
class GatConv {
 public:
  GatConv(std::int64_t in, std::int64_t out, std::uint64_t seed);
  VarPtr forward(const OpContext& ctx, SparseEngine& engine,
                 const VarPtr& x) const;
  std::vector<VarPtr> params() const {
    return {weight_, attn_src_, attn_dst_, bias_};
  }

 private:
  VarPtr weight_, attn_src_, attn_dst_, bias_;
};

}  // namespace gnnone
