#include "gnn/train.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "gen/rng.h"
#include "tensor/optim.h"

namespace gnnone {

std::size_t paper_scale_footprint(Backend b, const Dataset& d,
                                  const std::string& model_kind) {
  const auto V = double(d.paper_vertices);
  const auto E = double(d.paper_edges);
  const ModelConfig cfg = model_config_for(model_kind, d.input_feat_len,
                                           d.num_classes);

  // Graph topology. GNNOne keeps the standard COO with 4-byte ids (forward
  // + transpose). DGL holds COO plus CSR plus CSC with int64 ids — the
  // dual-format, wide-id storage the paper blames for Fig. 7's OOM. dgNN
  // keeps CSR + CSC with 4-byte ids.
  double topo = 0;
  switch (b) {
    case Backend::kGnnOne:
    case Backend::kGnnOneFused:
      topo = 2 * E * 8.0;  // two int32 id arrays per direction
      break;
    case Backend::kDgl:
      topo = E * 16.0 + 2 * (E * 8.0 + V * 8.0);
      break;
    case Backend::kDgnn:
      topo = 2 * (E * 4.0 + V * 8.0);
      break;
    case Backend::kAuto:
      // COO + CSR + neighbor-group metadata (~E/8 for 32-wide groups), both
      // directions: the dispatcher's format freedom is bought with memory.
      topo = 2 * (E * 8.0 + E * 4.0 + V * 8.0 + E / 8.0);
      break;
  }

  // Input features and retained activations (value + grad per layer, plus
  // dropout masks).
  const double features = V * double(d.input_feat_len) * 4.0;
  double activations = 0;
  std::int64_t dim = cfg.in_dim;
  for (int l = 0; l < cfg.num_layers; ++l) {
    const std::int64_t out =
        l + 1 == cfg.num_layers ? cfg.num_classes : cfg.hidden;
    activations += V * double(out) * 4.0 * 3.0;
    dim = out;
  }
  (void)dim;

  // Edge-level tensors: GCN keeps the static normalization weights (DGL
  // needs a copy per CSR/CSC ordering); GAT keeps attention logits, softmax
  // output and their gradients per layer.
  double edge_tensors = 0;
  if (model_kind == "gcn") {
    edge_tensors = E * 4.0 * (b == Backend::kDgl ? 2.0 : 1.0);
  } else if (model_kind == "gat") {
    edge_tensors = E * 4.0 * 4.0;
  }

  // Vendor-library workspace (cuSPARSE SpMM buffer) for the CSR backends.
  const double workspace =
      (b == Backend::kGnnOne || b == Backend::kGnnOneFused) ? 0.0 : E * 4.0;

  // Allocator + context overhead, identical across frameworks.
  const double framework = 2.0 * 1024 * 1024 * 1024;

  return std::size_t(topo + features + activations + edge_tensors +
                     workspace + framework);
}

TrainResult train_model(Backend backend, const Dataset& ds,
                        const std::string& model_kind,
                        const gpusim::DeviceSpec& dev,
                        const TrainOptions& opts) {
  TrainResult res;
  if (!SparseEngine::supports(backend, ds)) {
    res.fail_reason = "unsupported";
    return res;
  }
  res.paper_footprint_bytes = paper_scale_footprint(backend, ds, model_kind);

  // All device-side footprint is charged to one tracker so that an injected
  // fault at ANY site unwinds through the DeviceAllocation RAII guards and
  // leaves in_use() exactly where it started (the fault-injection tests
  // assert this).
  gpusim::DeviceMemory local_mem(dev.device_memory_bytes);
  gpusim::DeviceMemory& mem =
      opts.device_memory != nullptr ? *opts.device_memory : local_mem;

  try {
    // Site 1: paper-scale admission check — would the full-scale run fit?
    // Transient: the working set below is at the scaled stand-in size.
    {
      gpusim::DeviceAllocation admission(mem, res.paper_footprint_bytes);
    }

    const int in_dim = opts.feature_dim_override > 0
                           ? opts.feature_dim_override
                           : ds.input_feat_len;
    const ModelConfig cfg = model_config_for(model_kind, in_dim,
                                             ds.num_classes);

    SparseEngine engine(backend, ds.coo, dev);
    engine.set_tuning_cache(opts.tuning_cache);
    engine.set_online_tune(opts.online_tune);
    // Site 2: graph topology in the backend's storage format(s).
    gpusim::DeviceAllocation topo_alloc(mem, engine.graph_bytes());

    auto model = make_model(model_kind, engine, cfg);

    CycleLedger ledger;
    OpContext ctx;
    ctx.dev = &dev;
    ctx.ledger = &ledger;
    ctx.training = true;

    // Features and train/test split. Unlabeled datasets get generated labels
    // and features (the GNNBench approach the paper adopts, §5.3): usable
    // for time measurement, not accuracy.
    std::vector<int> labels = ds.labels;
    if (labels.empty()) {
      labels.resize(std::size_t(ds.coo.num_rows));
      Rng lr(opts.seed);
      for (auto& l : labels) {
        l = int(lr.uniform(std::uint64_t(ds.num_classes)));
      }
    }
    const auto x_data =
        make_features(ds.coo.num_rows, in_dim,
                      ds.labeled ? ds.labels : std::vector<int>{}, opts.seed);
    const VarPtr x = make_var(Tensor::from(ds.coo.num_rows, in_dim, x_data),
                              /*requires_grad=*/false);
    // Site 3: input feature matrix.
    gpusim::DeviceAllocation feat_alloc(mem, x->value.bytes());

    // Deterministic split: even vertices train, odd vertices test.
    std::vector<int> train_labels(labels.size(), -1),
        test_labels(labels.size(), -1);
    Rng split_rng(opts.seed + 7);
    for (std::size_t v = 0; v < labels.size(); ++v) {
      if (split_rng.uniform_real() < opts.train_fraction) {
        train_labels[v] = labels[v];
      } else {
        test_labels[v] = labels[v];
      }
    }

    // Site 4: model parameters and their gradients.
    std::size_t param_bytes = 0;
    for (const VarPtr& p : model->params()) {
      param_bytes += p->value.bytes() + p->grad.bytes();
    }
    gpusim::DeviceAllocation param_alloc(mem, param_bytes);

    Adam opt(model->params(), opts.lr);
    // Site 5: optimizer state (Adam first/second moments mirror the params).
    gpusim::DeviceAllocation opt_alloc(mem, param_bytes);

    std::uint64_t first_epoch_cycles = 0;
    for (int epoch = 0; epoch < opts.measured_epochs; ++epoch) {
      const std::uint64_t before = ledger.total();
      opt.zero_grad();
      const VarPtr logp = model->forward(
          ctx, engine, x, opts.seed + std::uint64_t(epoch) * 131);
      const VarPtr loss = vnll_loss(ctx, logp, train_labels);
      // Divergence guard: a non-finite loss means the run is unrecoverable;
      // stop before backward() spreads NaNs through every gradient and
      // report a structured failure. The poisoned epoch contributes nothing
      // to the accuracy curve.
      float loss_value = loss->value.numel() > 0 ? loss->value[0] : 0.0f;
      if (epoch == opts.inject_nan_at_epoch) {
        loss_value = std::numeric_limits<float>::quiet_NaN();
      }
      if (!std::isfinite(loss_value)) {
        res.fail_reason = "diverged";
        return res;
      }
      backward(loss);
      opt.step();
      if (epoch == 0) first_epoch_cycles = ledger.total() - before;
      if (opts.eval_accuracy) {
        res.accuracy_curve.push_back(accuracy(logp->value, test_labels));
      }
    }
    res.ran = true;
    if (!res.accuracy_curve.empty()) {
      res.final_accuracy = res.accuracy_curve.back();
    }
    // Per-epoch cost is structurally identical across epochs; use the first.
    res.cycles_per_epoch = first_epoch_cycles;
    res.total_cycles = res.cycles_per_epoch * std::uint64_t(opts.epochs);
    res.spmm_cycles = ledger.by_tag("spmm");
    res.sddmm_cycles = ledger.by_tag("sddmm");
    res.dense_cycles = ledger.by_tag("dense") + ledger.by_tag("edge_elem");
  } catch (const gpusim::DeviceOutOfMemory&) {
    res.fail_reason = "OOM";
  }
  return res;
}

}  // namespace gnnone
