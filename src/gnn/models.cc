#include "gnn/models.h"

#include <stdexcept>

namespace gnnone {

namespace {

class Gcn : public GnnModel {
 public:
  Gcn(const SparseEngine& engine, const ModelConfig& cfg) : cfg_(cfg) {
    std::int64_t in = cfg.in_dim;
    for (int l = 0; l < cfg.num_layers; ++l) {
      const std::int64_t out =
          l + 1 == cfg.num_layers ? cfg.num_classes : cfg.hidden;
      layers_.emplace_back(engine, in, out, 100 + std::uint64_t(l));
      in = out;
    }
  }

  VarPtr forward(const OpContext& ctx, SparseEngine& engine, const VarPtr& x,
                 std::uint64_t epoch_seed) override {
    VarPtr h = x;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      h = layers_[l].forward(ctx, engine, h);
      if (l + 1 < layers_.size()) {
        h = vrelu(ctx, h);
        h = vdropout(ctx, h, cfg_.dropout, epoch_seed + l);
      }
    }
    return vlog_softmax(ctx, h);
  }

  std::vector<VarPtr> params() const override {
    std::vector<VarPtr> ps;
    for (const auto& l : layers_) {
      for (const auto& p : l.params()) ps.push_back(p);
    }
    return ps;
  }

  std::string name() const override { return "GCN"; }

 private:
  ModelConfig cfg_;
  std::vector<GcnConv> layers_;
};

class Gin : public GnnModel {
 public:
  explicit Gin(const ModelConfig& cfg) : cfg_(cfg) {
    std::int64_t in = cfg.in_dim;
    for (int l = 0; l < cfg.num_layers; ++l) {
      const std::int64_t out =
          l + 1 == cfg.num_layers ? cfg.num_classes : cfg.hidden;
      const bool normalize = l + 1 < cfg.num_layers;  // logits stay raw
      layers_.emplace_back(in, out, 200 + std::uint64_t(l) * 3, 0.0f,
                           normalize);
      in = out;
    }
  }

  VarPtr forward(const OpContext& ctx, SparseEngine& engine, const VarPtr& x,
                 std::uint64_t epoch_seed) override {
    VarPtr h = x;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      h = layers_[l].forward(ctx, engine, h);
      if (l + 1 < layers_.size()) {
        h = vrelu(ctx, h);
        h = vdropout(ctx, h, cfg_.dropout, epoch_seed + l);
      }
    }
    return vlog_softmax(ctx, h);
  }

  std::vector<VarPtr> params() const override {
    std::vector<VarPtr> ps;
    for (const auto& l : layers_) {
      for (const auto& p : l.params()) ps.push_back(p);
    }
    return ps;
  }

  std::string name() const override { return "GIN"; }

 private:
  ModelConfig cfg_;
  std::vector<GinConv> layers_;
};

class Gat : public GnnModel {
 public:
  explicit Gat(const ModelConfig& cfg) : cfg_(cfg) {
    std::int64_t in = cfg.in_dim;
    for (int l = 0; l < cfg.num_layers; ++l) {
      const std::int64_t out =
          l + 1 == cfg.num_layers ? cfg.num_classes : cfg.hidden;
      layers_.emplace_back(in, out, 300 + std::uint64_t(l) * 5);
      in = out;
    }
  }

  VarPtr forward(const OpContext& ctx, SparseEngine& engine, const VarPtr& x,
                 std::uint64_t epoch_seed) override {
    VarPtr h = x;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      h = layers_[l].forward(ctx, engine, h);
      if (l + 1 < layers_.size()) {
        h = vrelu(ctx, h);
        h = vdropout(ctx, h, cfg_.dropout, epoch_seed + l);
      }
    }
    return vlog_softmax(ctx, h);
  }

  std::vector<VarPtr> params() const override {
    std::vector<VarPtr> ps;
    for (const auto& l : layers_) {
      for (const auto& p : l.params()) ps.push_back(p);
    }
    return ps;
  }

  std::string name() const override { return "GAT"; }

 private:
  ModelConfig cfg_;
  std::vector<GatConv> layers_;
};

}  // namespace

std::unique_ptr<GnnModel> make_gcn(const SparseEngine& engine,
                                   const ModelConfig& cfg) {
  return std::make_unique<Gcn>(engine, cfg);
}

std::unique_ptr<GnnModel> make_gin(const ModelConfig& cfg) {
  return std::make_unique<Gin>(cfg);
}

std::unique_ptr<GnnModel> make_gat(const ModelConfig& cfg) {
  return std::make_unique<Gat>(cfg);
}

ModelConfig paper_gcn_config(std::int64_t in_dim, std::int64_t classes) {
  ModelConfig c;
  c.in_dim = in_dim;
  c.hidden = 16;
  c.num_classes = classes;
  c.num_layers = 2;
  return c;
}

ModelConfig paper_gin_config(std::int64_t in_dim, std::int64_t classes) {
  ModelConfig c;
  c.in_dim = in_dim;
  c.hidden = 64;
  c.num_classes = classes;
  c.num_layers = 5;
  return c;
}

ModelConfig paper_gat_config(std::int64_t in_dim, std::int64_t classes) {
  ModelConfig c;
  c.in_dim = in_dim;
  c.hidden = 16;
  c.num_classes = classes;
  c.num_layers = 5;
  return c;
}

ModelConfig model_config_for(const std::string& kind, std::int64_t in_dim,
                             std::int64_t classes) {
  if (kind == "gcn") return paper_gcn_config(in_dim, classes);
  if (kind == "gin") return paper_gin_config(in_dim, classes);
  if (kind == "gat") return paper_gat_config(in_dim, classes);
  throw std::invalid_argument("unknown model kind: " + kind);
}

std::unique_ptr<GnnModel> make_model(const std::string& kind,
                                     const SparseEngine& engine,
                                     const ModelConfig& cfg) {
  if (kind == "gcn") return make_gcn(engine, cfg);
  if (kind == "gin") return make_gin(cfg);
  if (kind == "gat") return make_gat(cfg);
  throw std::invalid_argument("unknown model kind: " + kind);
}

}  // namespace gnnone
