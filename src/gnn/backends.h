// Sparse-kernel backends for GNN training (paper §5.3).
//
//  * kGnnOne — the paper's system: both SpMM and SDDMM run on the unified
//    COO kernels; the graph is stored once (COO + its transpose).
//  * kDgl   — DGL: cuSPARSE-style CSR SpMM plus DGL's own COO edge-parallel
//    SDDMM; the dual-format storage doubles graph memory (Fig. 7's OOM).
//  * kDgnn  — dgNN: fused vertex-parallel kernels (dgSparse SDDMM + CSR
//    SpMM); fusion rebates kernel-launch overheads but inherits the
//    vertex-parallel SDDMM's weaknesses. GAT only, as in the paper.
//
// All backends compute identical math (Fig. 5's accuracy equivalence); only
// which simulated kernel runs — and therefore the cycle ledger and memory
// accounting — differs.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "gen/datasets.h"
#include "gpusim/device.h"
#include "gpusim/memory.h"
#include "gpusim/stats.h"
#include "graph/coo.h"
#include "graph/csr.h"
#include "tensor/ops.h"

namespace gnnone {

enum class Backend {
  kGnnOne,       // the paper's system (individual unified kernels)
  kGnnOneFused,  // extension: + fused GAT attention (the paper's future work)
  kDgl,
  kDgnn,
};

std::string backend_name(Backend b);

/// Owns the graph in the backend's storage formats and exposes autograd
/// sparse ops whose forward/backward invoke the backend's simulated kernels.
class SparseEngine {
 public:
  SparseEngine(Backend backend, const Coo& coo, const gpusim::DeviceSpec& dev);

  Backend backend() const { return backend_; }
  const Coo& coo() const { return coo_; }
  vid_t num_vertices() const { return coo_.num_rows; }
  eid_t num_edges() const { return coo_.nnz(); }

  /// Graph-topology device bytes this backend keeps resident.
  std::size_t graph_bytes() const;

  /// y = A(edge_w) * x. `edge_w` is an |E| x 1 variable or nullptr for
  /// unweighted aggregation. Backward produces dx via transposed SpMM and
  /// (when edge_w requires grad) d(edge_w) via SDDMM — the kernel pairing
  /// the paper's §1 describes.
  VarPtr spmm(const OpContext& ctx, const VarPtr& edge_w, const VarPtr& x);

  /// w[e] = dot(x[row e], y[col e]) as an |E| x 1 variable. Backward is two
  /// SpMMs (with d w as edge values).
  VarPtr sddmm(const OpContext& ctx, const VarPtr& x, const VarPtr& y);

  /// e[uv] = src_score[u] + dst_score[v] (GAT attention logits); runs as an
  /// SDDMM with feature length 2 (dot([s_u, 1], [1, d_v])).
  VarPtr u_add_v(const OpContext& ctx, const VarPtr& src_score,
                 const VarPtr& dst_score);

  /// Per-destination-row softmax over incoming edges. The segment sums run
  /// as feature-length-1 SpMMs on the backend's kernels.
  VarPtr edge_softmax(const OpContext& ctx, const VarPtr& scores);

  /// Extension (kGnnOneFused): the whole GAT attention block — u_add_v,
  /// LeakyReLU, edge softmax and the weighted aggregation — as two fused
  /// passes on the GNNOne design (kernels/gnnone_fused.h). Forward is fused;
  /// backward reuses the individual kernels.
  VarPtr fused_attention(const OpContext& ctx, const VarPtr& s_src,
                         const VarPtr& s_dst, const VarPtr& h,
                         float leaky_slope);

  /// Marks the following sparse calls as one fused kernel region (dgNN):
  /// launch overheads after the first call are rebated until end_fused().
  void begin_fused();
  void end_fused();

  /// Whether this backend can train this dataset at the paper's scale
  /// (reproduces the support matrix of Figs. 6/7: dgNN's error on Kron-21).
  static bool supports(Backend b, const Dataset& d);

 private:
  // Runs the backend's SpMM/SDDMM kernel, charging the ledger.
  Tensor run_spmm(const OpContext& ctx, const Coo& coo, const Csr& csr,
                  std::span<const float> ev, const Tensor& x) const;
  Tensor run_sddmm(const OpContext& ctx, const Tensor& x,
                   const Tensor& y) const;
  void charge(const OpContext& ctx, const char* tag,
              const gpusim::KernelStats& ks) const;

  Backend backend_;
  const gpusim::DeviceSpec* dev_;
  Coo coo_;            // forward graph, CSR-arranged COO
  Coo coo_t_;          // transpose (backward)
  std::vector<eid_t> perm_;    // transposed NZE -> forward NZE
  Csr csr_, csr_t_;    // kept resident only by CSR-based backends
  mutable bool fused_ = false;
  mutable bool fused_first_ = true;
};

}  // namespace gnnone
