// Sparse-kernel backends for GNN training (paper §5.3).
//
//  * kGnnOne — the paper's system: both SpMM and SDDMM run on the unified
//    COO kernels; the graph is stored once (COO + its transpose).
//  * kDgl   — DGL: cuSPARSE-style CSR SpMM plus DGL's own COO edge-parallel
//    SDDMM; the dual-format storage doubles graph memory (Fig. 7's OOM).
//  * kDgnn  — dgNN: fused vertex-parallel kernels (dgSparse SDDMM + CSR
//    SpMM); fusion rebates kernel-launch overheads but inherits the
//    vertex-parallel SDDMM's weaknesses. GAT only, as in the paper.
//  * kAuto  — the autotuned dispatcher (docs/AUTOTUNING.md §5): every SpMM /
//    SDDMM launch consults the tuning cache for this graph's signature and
//    runs the tuned (kernel family, config) candidate. Warm cache hit →
//    tuned launch; miss → nearest-signature fallback, then optional online
//    tuning, then a structural heuristic. Keeps every storage format
//    resident so any family can dispatch.
//
// All backends compute identical math (Fig. 5's accuracy equivalence); only
// which simulated kernel runs — and therefore the cycle ledger and memory
// accounting — differs.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "gen/datasets.h"
#include "gpusim/device.h"
#include "gpusim/memory.h"
#include "gpusim/stats.h"
#include "graph/coo.h"
#include "graph/csr.h"
#include "graph/neighbor_group.h"
#include "tensor/ops.h"
#include "tune/tuner.h"

namespace gnnone {

enum class Backend {
  kGnnOne,       // the paper's system (individual unified kernels)
  kGnnOneFused,  // extension: + fused GAT attention (the paper's future work)
  kDgl,
  kDgnn,
  kAuto,         // extension: autotuned per-launch kernel/config dispatch
};

std::string backend_name(Backend b);

/// Owns the graph in the backend's storage formats and exposes autograd
/// sparse ops whose forward/backward invoke the backend's simulated kernels.
class SparseEngine {
 public:
  /// The graph is copied into the backend's storage formats; the device spec
  /// is copied too (it is a small flat struct, and callers — the serving
  /// driver included — routinely pass temporaries that die before the first
  /// kernel runs).
  SparseEngine(Backend backend, const Coo& coo, const gpusim::DeviceSpec& dev);

  Backend backend() const { return backend_; }
  const Coo& coo() const { return coo_; }
  vid_t num_vertices() const { return coo_.num_rows; }
  eid_t num_edges() const { return coo_.nnz(); }

  /// Graph-topology device bytes this backend keeps resident.
  std::size_t graph_bytes() const;

  /// y = A(edge_w) * x. `edge_w` is an |E| x 1 variable or nullptr for
  /// unweighted aggregation. Backward produces dx via transposed SpMM and
  /// (when edge_w requires grad) d(edge_w) via SDDMM — the kernel pairing
  /// the paper's §1 describes.
  VarPtr spmm(const OpContext& ctx, const VarPtr& edge_w, const VarPtr& x);

  /// w[e] = dot(x[row e], y[col e]) as an |E| x 1 variable. Backward is two
  /// SpMMs (with d w as edge values).
  VarPtr sddmm(const OpContext& ctx, const VarPtr& x, const VarPtr& y);

  /// e[uv] = src_score[u] + dst_score[v] (GAT attention logits); runs as an
  /// SDDMM with feature length 2 (dot([s_u, 1], [1, d_v])).
  VarPtr u_add_v(const OpContext& ctx, const VarPtr& src_score,
                 const VarPtr& dst_score);

  /// Per-destination-row softmax over incoming edges. The segment sums run
  /// as feature-length-1 SpMMs on the backend's kernels.
  VarPtr edge_softmax(const OpContext& ctx, const VarPtr& scores);

  /// Extension (kGnnOneFused): the whole GAT attention block — u_add_v,
  /// LeakyReLU, edge softmax and the weighted aggregation — as two fused
  /// passes on the GNNOne design (kernels/gnnone_fused.h). Forward is fused;
  /// backward reuses the individual kernels.
  VarPtr fused_attention(const OpContext& ctx, const VarPtr& s_src,
                         const VarPtr& s_dst, const VarPtr& h,
                         float leaky_slope);

  /// Marks the following sparse calls as one fused kernel region (dgNN):
  /// launch overheads after the first call are rebated until end_fused().
  void begin_fused();
  void end_fused();

  /// Whether this backend can train this dataset at the paper's scale
  /// (reproduces the support matrix of Figs. 6/7: dgNN's error on Kron-21).
  static bool supports(Backend b, const Dataset& d);

  /// kAuto: the pretuned cache the dispatcher consults (caller keeps
  /// ownership; may be null). Ignored by the fixed backends.
  void set_tuning_cache(const tune::TuningCache* cache) {
    tuning_cache_ = cache;
  }
  /// kAuto: when a launch misses the cache entirely, tune it on the spot and
  /// remember the decision for the rest of the session.
  void set_online_tune(bool on) { online_tune_ = on; }

  /// The candidate a kAuto launch of `op` on `coo` (the forward or transposed
  /// graph) with feature length `f` would dispatch to. Exposed so tests and
  /// benches can assert the dispatch matches the tuned decision.
  tune::Candidate auto_candidate(const Coo& coo, tune::TuneOp op, int f) const;

 private:
  // Runs the backend's SpMM/SDDMM kernel, charging the ledger.
  Tensor run_spmm(const OpContext& ctx, const Coo& coo, const Csr& csr,
                  std::span<const float> ev, const Tensor& x) const;
  Tensor run_sddmm(const OpContext& ctx, const Tensor& x,
                   const Tensor& y) const;
  void charge(const OpContext& ctx, const char* tag,
              const gpusim::KernelStats& ks) const;

  Backend backend_;
  gpusim::DeviceSpec dev_;  // by value: binding a caller temporary is legal
  Coo coo_;            // forward graph, CSR-arranged COO
  Coo coo_t_;          // transpose (backward)
  std::vector<eid_t> perm_;    // transposed NZE -> forward NZE
  Csr csr_, csr_t_;    // kept resident only by CSR-based backends and kAuto
  NeighborGroups ng_, ng_t_;       // kAuto only (neighbor-group family)
  tune::GraphSignature sig_, sig_t_;  // kAuto only: precomputed lookup keys
  std::string device_key_;            // kAuto only
  const tune::TuningCache* tuning_cache_ = nullptr;
  bool online_tune_ = false;
  mutable tune::TuningCache session_;  // online-tuned decisions, kAuto only
  mutable bool fused_ = false;
  mutable bool fused_first_ = true;
};

}  // namespace gnnone
