#include "gnn/layers.h"

#include <cmath>

#include "gen/rng.h"
#include "graph/convert.h"

namespace gnnone {

VarPtr glorot(std::int64_t rows, std::int64_t cols, std::uint64_t seed,
              const std::string& name) {
  Rng rng(seed);
  const float limit = std::sqrt(6.0f / float(rows + cols));
  Tensor t(rows, cols);
  for (std::size_t i = 0; i < std::size_t(t.numel()); ++i) {
    t[i] = (float(rng.uniform_real()) * 2.0f - 1.0f) * limit;
  }
  auto v = make_var(std::move(t), /*requires_grad=*/true, name);
  return v;
}

// ---------------------------------------------------------------------------
// GCN
// ---------------------------------------------------------------------------

GcnConv::GcnConv(const SparseEngine& engine, std::int64_t in, std::int64_t out,
                 std::uint64_t seed) {
  weight_ = glorot(in, out, seed, "gcn.w");
  bias_ = make_var(Tensor(1, out), true, "gcn.b");

  // Symmetric normalization 1/sqrt(deg_r deg_c), computed once (static).
  const Coo& coo = engine.coo();
  const auto deg = row_lengths(coo);
  Tensor nw(coo.nnz(), 1);
  for (std::size_t e = 0; e < std::size_t(coo.nnz()); ++e) {
    const auto dr = double(std::max<vid_t>(deg[std::size_t(coo.row[e])], 1));
    const auto dc = double(std::max<vid_t>(deg[std::size_t(coo.col[e])], 1));
    nw[e] = float(1.0 / std::sqrt(dr * dc));
  }
  norm_w_ = make_var(std::move(nw), /*requires_grad=*/false, "gcn.norm");
}

VarPtr GcnConv::forward(const OpContext& ctx, SparseEngine& engine,
                        const VarPtr& x) const {
  const VarPtr h = vmatmul(ctx, x, weight_);
  const VarPtr agg = engine.spmm(ctx, norm_w_, h);
  return vbias(ctx, agg, bias_);
}

// ---------------------------------------------------------------------------
// GIN
// ---------------------------------------------------------------------------

GinConv::GinConv(std::int64_t in, std::int64_t out, std::uint64_t seed,
                 float eps, bool normalize)
    : eps_(eps), normalize_(normalize) {
  w1_ = glorot(in, out, seed, "gin.w1");
  b1_ = make_var(Tensor(1, out), true, "gin.b1");
  w2_ = glorot(out, out, seed + 1, "gin.w2");
  b2_ = make_var(Tensor(1, out), true, "gin.b2");
}

VarPtr GinConv::forward(const OpContext& ctx, SparseEngine& engine,
                        const VarPtr& x) const {
  const VarPtr agg = engine.spmm(ctx, nullptr, x);  // sum aggregation
  const VarPtr combined = vadd(ctx, vscale(ctx, x, 1.0f + eps_), agg);
  const VarPtr h1 = vrelu(ctx, vbias(ctx, vmatmul(ctx, combined, w1_), b1_));
  const VarPtr h2 = vbias(ctx, vmatmul(ctx, h1, w2_), b2_);
  // GIN's sum aggregation grows activations with vertex degree; the GIN
  // recipe stabilizes each layer with batch normalization.
  return normalize_ ? vcolnorm(ctx, h2) : h2;
}

// ---------------------------------------------------------------------------
// GAT
// ---------------------------------------------------------------------------

GatConv::GatConv(std::int64_t in, std::int64_t out, std::uint64_t seed) {
  weight_ = glorot(in, out, seed, "gat.w");
  attn_src_ = glorot(out, 1, seed + 1, "gat.asrc");
  attn_dst_ = glorot(out, 1, seed + 2, "gat.adst");
  bias_ = make_var(Tensor(1, out), true, "gat.b");
}

VarPtr GatConv::forward(const OpContext& ctx, SparseEngine& engine,
                        const VarPtr& x) const {
  const VarPtr h = vmatmul(ctx, x, weight_);
  const VarPtr s_src = vmatmul(ctx, h, attn_src_);  // |V| x 1
  const VarPtr s_dst = vmatmul(ctx, h, attn_dst_);
  if (engine.backend() == Backend::kGnnOneFused) {
    // Extension: the attention block as two fused GNNOne passes.
    const VarPtr out = engine.fused_attention(ctx, s_src, s_dst, h, 0.2f);
    return vbias(ctx, out, bias_);
  }
  engine.begin_fused();  // dgNN fuses this SDDMM..SpMM chain into one kernel
  const VarPtr logits = engine.u_add_v(ctx, s_src, s_dst);
  const VarPtr act = vleaky_relu(ctx, logits, 0.2f);
  const VarPtr alpha = engine.edge_softmax(ctx, act);
  const VarPtr out = engine.spmm(ctx, alpha, h);
  engine.end_fused();
  return vbias(ctx, out, bias_);
}

}  // namespace gnnone
