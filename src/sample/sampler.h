// Deterministic k-hop neighbor sampler (the FGNN/SamGraph minibatch regime).
//
// Each hop draws at most `fanout` distinct neighbors per frontier vertex
// with a replacement-free reservoir pass over the vertex's adjacency list
// (take-all when the degree fits the fanout). Draw indices come from the
// unbiased Rng::uniform, and every vertex's reservoir is seeded from
// (trace seed, hop, global vertex id) — sampling a vertex is independent of
// where it sits in the frontier, so equal seeds give byte-identical
// subgraphs on every platform.
//
// The sampled block is returned as a compact-relabeled, CSR-arranged COO:
// rows aggregate over columns (y = A x pulls neighbor messages into the
// sampling vertex), seeds occupy local ids 0..num_seeds, and later hops
// append in discovery order. Self-loops are added for every sampled vertex
// (standard GNN practice; also guarantees no empty rows, which keeps the
// per-batch kernels and GCN normalization well-defined on any sample).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/coo.h"
#include "graph/csr.h"
#include "graph/types.h"

namespace gnnone {

struct SampleOptions {
  /// fanouts[h] = neighbor budget per frontier vertex at hop h; the vector's
  /// length is the hop count (one hop per model layer in serving).
  std::vector<int> fanouts = {10, 5};
  std::uint64_t seed = 1;
  bool add_self_loops = true;
};

struct SampledSubgraph {
  /// local id -> global id; seeds first, then each hop's discoveries.
  std::vector<vid_t> vertices;
  /// vertices[hop_offsets[h] .. hop_offsets[h+1]) entered the sample at hop
  /// h (h = 0 is the seed set); size fanouts.size() + 2.
  std::vector<vid_t> hop_offsets;
  /// Sampled block in local ids, CSR-arranged; row = sampling vertex,
  /// col = drawn neighbor (plus self-loops when enabled).
  Coo coo;
  /// Drawn (vertex, neighbor) pairs before dedup and self-loops.
  eid_t sampled_edges = 0;
  /// Bytes of adjacency data the sampler touched (offsets + every scanned
  /// neighbor id); the serving driver charges this to the cycle ledger.
  std::size_t bytes_touched = 0;

  vid_t num_seeds() const {
    return hop_offsets.size() > 1 ? hop_offsets[1] : 0;
  }
  vid_t num_vertices() const { return vid_t(vertices.size()); }
};

/// Reusable cross-call scratch for sample_khop. The sampler's intern table
/// (global id -> local id) is O(|V|); allocating and clearing it per call
/// dominates per-batch cost when a server samples many small blocks on a
/// large graph. The table is epoch-stamped instead: each call bumps the
/// epoch, and a slot counts as present only when its stamp matches, so reuse
/// costs O(block) rather than O(|V|). A default-constructed scratch works
/// for any graph and grows to the largest one it has served.
class SamplerScratch {
 public:
  SamplerScratch() = default;

  /// Starts a new sampling epoch over a graph with `num_rows` vertices and
  /// returns the epoch id. Grows (never shrinks) the tables.
  std::uint64_t begin_epoch(vid_t num_rows) {
    if (slot_.size() < std::size_t(num_rows)) {
      slot_.resize(std::size_t(num_rows), 0);
      stamp_.resize(std::size_t(num_rows), 0);
    }
    return ++epoch_;
  }

  bool present(vid_t g) const { return stamp_[std::size_t(g)] == epoch_; }
  vid_t slot(vid_t g) const { return slot_[std::size_t(g)]; }
  void put(vid_t g, vid_t local) {
    stamp_[std::size_t(g)] = epoch_;
    slot_[std::size_t(g)] = local;
  }

  std::uint64_t epoch() const { return epoch_; }
  std::vector<vid_t>& reservoir() { return reservoir_; }

 private:
  std::vector<vid_t> slot_;           // local id, valid when stamp matches
  std::vector<std::uint64_t> stamp_;  // epoch that wrote the slot
  std::uint64_t epoch_ = 0;           // 0 = no epoch begun; stamps start at 1
  std::vector<vid_t> reservoir_;      // per-vertex draw buffer, reused
};

/// Samples the k-hop neighborhood of `seeds` (global ids; duplicates are
/// collapsed, first occurrence keeps the lower local id). A fanout <= 0
/// means "take every neighbor" for that hop. Throws std::invalid_argument
/// on an out-of-range seed or empty fanout list.
///
/// `scratch` lets a caller that samples many blocks (the inference server)
/// reuse the O(|V|) intern table across calls; null makes the call allocate
/// its own. Results are byte-identical either way.
SampledSubgraph sample_khop(const Csr& graph, std::span<const vid_t> seeds,
                            const SampleOptions& opts = {},
                            SamplerScratch* scratch = nullptr);

}  // namespace gnnone
