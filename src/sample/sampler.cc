#include "sample/sampler.h"

#include <stdexcept>

#include "gen/rng.h"
#include "graph/convert.h"

namespace gnnone {

namespace {

/// Per-(trace, hop, vertex) stream seed: sampling a vertex must not depend
/// on frontier order, so each reservoir gets its own splitmix64 stream.
std::uint64_t vertex_stream_seed(std::uint64_t seed, int hop, vid_t v) {
  return seed ^ (std::uint64_t(hop) + 1) * 0x9e3779b97f4a7c15ull ^
         std::uint64_t(std::uint32_t(v)) * 0xbf58476d1ce4e5b9ull;
}

}  // namespace

SampledSubgraph sample_khop(const Csr& graph, std::span<const vid_t> seeds,
                            const SampleOptions& opts,
                            SamplerScratch* scratch) {
  if (opts.fanouts.empty()) {
    throw std::invalid_argument("sample_khop: fanouts must not be empty");
  }

  SampledSubgraph out;
  SamplerScratch own;  // standalone calls pay their own allocation
  if (scratch == nullptr) scratch = &own;
  scratch->begin_epoch(graph.num_rows);
  auto intern = [&](vid_t g) {
    if (!scratch->present(g)) {
      scratch->put(g, vid_t(out.vertices.size()));
      out.vertices.push_back(g);
    }
    return scratch->slot(g);
  };

  out.hop_offsets.push_back(0);
  for (vid_t s : seeds) {
    if (s < 0 || s >= graph.num_rows) {
      throw std::invalid_argument("sample_khop: seed vertex out of range");
    }
    intern(s);
  }
  out.hop_offsets.push_back(vid_t(out.vertices.size()));

  EdgeList edges;
  std::vector<vid_t>& reservoir = scratch->reservoir();
  vid_t frontier_begin = 0;
  for (std::size_t hop = 0; hop < opts.fanouts.size(); ++hop) {
    const vid_t frontier_end = vid_t(out.vertices.size());
    const int fanout = opts.fanouts[hop];
    for (vid_t lv = frontier_begin; lv < frontier_end; ++lv) {
      const vid_t v = out.vertices[std::size_t(lv)];
      const eid_t begin = graph.row_begin(v);
      const vid_t deg = graph.row_length(v);
      // One offsets-pair read plus every scanned neighbor id.
      out.bytes_touched += 2 * sizeof(eid_t) + std::size_t(deg) * sizeof(vid_t);

      if (fanout <= 0 || deg <= fanout) {
        reservoir.assign(graph.col.begin() + begin,
                         graph.col.begin() + begin + deg);
      } else {
        // Replacement-free reservoir over the adjacency list: the first
        // `fanout` neighbors fill the reservoir, every later neighbor j
        // replaces a uniform slot of [0, j] when it lands below fanout.
        reservoir.assign(graph.col.begin() + begin,
                         graph.col.begin() + begin + fanout);
        Rng rng(vertex_stream_seed(opts.seed, int(hop), v));
        for (vid_t j = fanout; j < deg; ++j) {
          const auto k = rng.uniform(std::uint64_t(j) + 1);
          if (k < std::uint64_t(fanout)) {
            reservoir[std::size_t(k)] = graph.col[std::size_t(begin + j)];
          }
        }
      }
      for (vid_t u : reservoir) {
        edges.emplace_back(lv, intern(u));
        ++out.sampled_edges;
      }
    }
    // Next hop expands only the vertices this hop discovered; earlier layers
    // already have their neighborhoods.
    frontier_begin = frontier_end;
    out.hop_offsets.push_back(vid_t(out.vertices.size()));
  }

  const auto n = vid_t(out.vertices.size());
  if (opts.add_self_loops) {
    for (vid_t v = 0; v < n; ++v) edges.emplace_back(v, v);
  }
  out.coo = coo_from_edges(n, n, std::move(edges));
  return out;
}

}  // namespace gnnone
