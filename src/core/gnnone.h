// GNNOne public API — single include for downstream users.
//
// GNNOne is a unified system for the two basic GNN sparse kernels, SDDMM and
// SpMM (HPDC'24). Both kernels share one two-stage data-load design over the
// standard CSR-arranged COO format:
//
//   Stage 1  edge-parallel, perfectly balanced, coalesced staging of NZEs
//            (and edge features) into shared memory;
//   Stage 2  the symbiotic thread scheduler: float4 thread-groups,
//            consecutive NZE assignment, row-feature reuse (SDDMM) and
//            running thread-local reduction (SpMM).
//
// This reproduction executes the kernels on a deterministic SIMT simulator
// (gpusim) standing in for the paper's A100; outputs are exact, and the
// returned KernelStats carry the modeled execution time.
//
// Quick start:
//
//   #include "core/gnnone.h"
//   gnnone::Context ctx;                    // A100-class simulated device
//   gnnone::Coo graph = ...;                // CSR-arranged COO
//   auto stats = ctx.spmm(graph, vals, x, f, y);   // y = A x
//   auto stats2 = ctx.sddmm(graph, x, y2, f, w);   // w = mask(A) . (x y2^T)
//
// For GNN training, see gnn/train.h (GCN / GIN / GAT on three backends).
#pragma once

#include <span>

#include "gen/requests.h"
#include "gnn/backends.h"
#include "gnn/models.h"
#include "gnn/train.h"
#include "gpusim/device.h"
#include "gpusim/report.h"
#include "gpusim/stats.h"
#include "graph/convert.h"
#include "kernels/baselines.h"
#include "kernels/config.h"
#include "kernels/gnnone.h"
#include "sample/sampler.h"
#include "serve/server.h"

namespace gnnone {

/// Entry point tying a simulated device to the GNNOne kernels.
class Context {
 public:
  Context() : dev_(gpusim::default_device()) {}
  explicit Context(const gpusim::DeviceSpec& dev) : dev_(dev) {}

  const gpusim::DeviceSpec& device() const { return dev_; }

  /// SpMM: y[|V| x f] = A(coo, edge_val) * x. Output is overwritten.
  gpusim::KernelStats spmm(const Coo& coo, std::span<const float> edge_val,
                           std::span<const float> x, int f,
                           std::span<float> y,
                           const GnnOneConfig& cfg = {}) const {
    return gnnone_spmm(dev_, coo, edge_val, x, f, y, cfg);
  }

  /// SDDMM: w[e] = dot(x[row e, :], y[col e, :]).
  gpusim::KernelStats sddmm(const Coo& coo, std::span<const float> x,
                            std::span<const float> y, int f,
                            std::span<float> w,
                            const GnnOneConfig& cfg = {}) const {
    return gnnone_sddmm(dev_, coo, x, y, f, w, cfg);
  }

  /// COO nonzero-split SpMV (feature length 1; Stage-1 caching dropped).
  gpusim::KernelStats spmv(const Coo& coo, std::span<const float> edge_val,
                           std::span<const float> x, std::span<float> y,
                           int nzes_per_thread = 4) const {
    return gnnone_spmv(dev_, coo, edge_val, x, y, nzes_per_thread);
  }

 private:
  gpusim::DeviceSpec dev_;
};

/// Converts modeled cycles to milliseconds at a device's SM clock. Only
/// meaningful for relative comparisons. The one-argument form uses the
/// default simulated device; pass the spec you launched on (e.g.
/// `ctx.device()`) whenever it may differ — the E2 sensitivity ablation
/// sweeps DeviceSpec, and times reported at the wrong clock are not
/// comparable across variants.
inline double cycles_to_ms(std::uint64_t cycles,
                           const gpusim::DeviceSpec& spec) {
  return gpusim::cycles_to_ms(cycles, spec);
}
inline double cycles_to_ms(std::uint64_t cycles) {
  return gpusim::cycles_to_ms(cycles, gpusim::default_device());
}

}  // namespace gnnone
