// The autotuner's search space: kernel family x GnnOneConfig knobs
// (docs/AUTOTUNING.md §2).
//
// A Candidate pins everything the dispatcher needs to reproduce a tuned
// launch: which kernel family runs and every knob that family honors. The
// family axis spans the paper's own kernels (GNNOne two-stage COO, and its
// CSR-derived-row-id variant of §5.4.5) and the strongest baseline designs
// per op (neighbor-group, vertex-parallel, edge-parallel, merge-path), so
// the tuner can select a baseline on the points where the §5.4 ablations
// show GNNOne's defaults are not the winner.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/stats.h"
#include "graph/coo.h"
#include "graph/csr.h"
#include "graph/neighbor_group.h"
#include "kernels/config.h"

namespace gnnone::tune {

/// The sparse op being tuned (the three kernels of the paper's §4).
enum class TuneOp { kSpmm, kSddmm, kSpmv };

const char* op_name(TuneOp op);
bool op_from_name(const std::string& name, TuneOp* out);

/// Kernel family a candidate dispatches to. Eligibility depends on the op
/// (see families()).
enum class KernelFamily {
  kGnnOne,          // unified two-stage COO kernels (all ops)
  kGnnOneCsr,       // GNNOne SpMM with CSR-derived row ids (SpMM only)
  kNeighborGroup,   // Huang et al. neighbor-group SpMM (SpMM only)
  kVertexParallel,  // cuSPARSE-like CSR SpMM / dgSparse SDDMM
  kEdgeParallel,    // DGL COO edge-parallel SDDMM (SDDMM only)
  kMergePath,       // Merge-SpMV (SpMV only)
};

const char* family_name(KernelFamily f);
bool family_from_name(const std::string& name, KernelFamily* out);

/// One point of the search space.
struct Candidate {
  KernelFamily family = KernelFamily::kGnnOne;
  /// Honored by the GNNOne families; Validate()-clean by construction for
  /// every candidate the generators below emit.
  GnnOneConfig cfg;
  /// SpMV only: NZEs per thread (GNNOne) / merge items per thread.
  int items = 4;

  /// Deterministic discriminator, e.g.
  /// "gnnone:cache=128,vec=4,pol=cons,s1=1,reuse=1,unroll=4".
  std::string name(TuneOp op) const;
};

/// Families eligible for `op`, in deterministic search order (GNNOne first).
std::vector<KernelFamily> families(TuneOp op);

/// The family's default-knob candidate — what a user running that backend
/// without a tuner would get. Always part of the search, so a tuned
/// decision can never lose to a fixed default.
Candidate family_default(TuneOp op, KernelFamily fam);

/// The family's full knob grid for `op` (exhaustive search). Every entry
/// passes GnnOneConfig::Validate().
std::vector<Candidate> family_grid(TuneOp op, KernelFamily fam);

/// Coordinate-descent axes: number of independent knob axes of the family,
/// and all variants of `base` along one axis (base included). Axes are
/// ordered by expected impact (cache size, vec width, schedule, caching
/// toggles, unroll).
int num_axes(TuneOp op, KernelFamily fam);
std::vector<Candidate> axis_variants(TuneOp op, KernelFamily fam,
                                     const Candidate& base, int axis);

/// Non-owning handles to the formats a candidate launch may need. `csr` is
/// required by the CSR families, `ng` by kNeighborGroup; run_candidate
/// throws std::invalid_argument when a required format is missing.
struct OpInputs {
  const Coo* coo = nullptr;
  const Csr* csr = nullptr;
  const NeighborGroups* ng = nullptr;
};

/// Executes one candidate on the simulator and returns its KernelStats
/// (modeled cycles = the tuner's cost metric). Semantics per op:
///   kSpmm:  out[rows*f] = A(edge_val) * x[cols*f]
///   kSddmm: out[nnz]    = rowwise dot of x[rows*f] and y_in[cols*f]
///   kSpmv:  out[rows]   = A(edge_val) * x[cols]          (f ignored)
gpusim::KernelStats run_candidate(const gpusim::DeviceSpec& dev,
                                  const Candidate& cand, TuneOp op,
                                  const OpInputs& in,
                                  std::span<const float> edge_val,
                                  std::span<const float> x,
                                  std::span<const float> y_in, int f,
                                  std::span<float> out);

}  // namespace gnnone::tune
