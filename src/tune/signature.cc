#include "tune/signature.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

namespace gnnone::tune {

const char* skew_bucket_name(SkewBucket b) {
  switch (b) {
    case SkewBucket::kUniform: return "uniform";
    case SkewBucket::kModerate: return "moderate";
    case SkewBucket::kSkewed: return "skewed";
    case SkewBucket::kHeavy: return "heavy";
  }
  return "?";
}

bool skew_bucket_from_name(const std::string& name, SkewBucket* out) {
  for (SkewBucket b : {SkewBucket::kUniform, SkewBucket::kModerate,
                       SkewBucket::kSkewed, SkewBucket::kHeavy}) {
    if (name == skew_bucket_name(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

namespace {

SkewBucket bucket_of(double cv) {
  if (cv < 0.25) return SkewBucket::kUniform;
  if (cv < 0.75) return SkewBucket::kModerate;
  if (cv < 1.5) return SkewBucket::kSkewed;
  return SkewBucket::kHeavy;
}

/// Fixed shortest-ish float formatting (%.4g) so key() is deterministic and
/// byte-stable across runs/platforms for the value ranges signatures hold.
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

}  // namespace

std::string GraphSignature::key() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "r%lld,c%lld,e%lld,d%s,m%lld,cv%s,%s",
                static_cast<long long>(rows), static_cast<long long>(cols),
                static_cast<long long>(nnz), fmt_double(mean_degree).c_str(),
                static_cast<long long>(max_degree),
                fmt_double(degree_cv).c_str(), skew_bucket_name(skew));
  return buf;
}

bool GraphSignature::operator==(const GraphSignature& o) const {
  return rows == o.rows && cols == o.cols && nnz == o.nnz &&
         max_degree == o.max_degree && skew == o.skew &&
         fmt_double(mean_degree) == fmt_double(o.mean_degree) &&
         fmt_double(degree_cv) == fmt_double(o.degree_cv);
}

GraphSignature signature_of(const Coo& coo) {
  GraphSignature s;
  s.rows = coo.num_rows;
  s.cols = coo.num_cols;
  s.nnz = coo.nnz();
  if (s.rows <= 0) return s;

  // Row degrees in one pass over the (row-sorted) NZE list.
  std::vector<std::int64_t> deg(std::size_t(coo.num_rows), 0);
  for (vid_t r : coo.row) ++deg[std::size_t(r)];

  double sum = 0.0, sum_sq = 0.0;
  for (std::int64_t d : deg) {
    s.max_degree = std::max(s.max_degree, d);
    sum += double(d);
    sum_sq += double(d) * double(d);
  }
  const double n = double(s.rows);
  s.mean_degree = sum / n;
  const double var = std::max(0.0, sum_sq / n - s.mean_degree * s.mean_degree);
  s.degree_cv = s.mean_degree > 0.0 ? std::sqrt(var) / s.mean_degree : 0.0;
  s.skew = bucket_of(s.degree_cv);
  return s;
}

GraphSignature coarse_signature(const GraphSignature& s) {
  auto pow2_ceil = [](std::int64_t v) {
    std::int64_t p = 1;
    while (p < v) p <<= 1;
    return p;
  };
  GraphSignature c;
  c.rows = pow2_ceil(s.rows);
  c.cols = pow2_ceil(s.cols);
  c.nnz = pow2_ceil(s.nnz);
  c.max_degree = pow2_ceil(s.max_degree);
  // Half-octave grid: exp2(round(2*log2(d+1)) / 2) - 1, clamped to >= 0.
  c.mean_degree =
      s.mean_degree > 0.0
          ? std::exp2(std::round(2.0 * std::log2(s.mean_degree + 1.0)) / 2.0) -
                1.0
          : 0.0;
  c.degree_cv = std::round(s.degree_cv * 4.0) / 4.0;
  c.skew = s.skew;
  return c;
}

double signature_distance(const GraphSignature& a, const GraphSignature& b) {
  auto log_gap = [](double x, double y) {
    const double lx = std::log(std::max(x, 1.0));
    const double ly = std::log(std::max(y, 1.0));
    return std::abs(lx - ly);
  };
  double d = log_gap(double(a.nnz), double(b.nnz)) +
             log_gap(double(a.rows), double(b.rows)) +
             log_gap(a.mean_degree + 1.0, b.mean_degree + 1.0) +
             log_gap(double(a.max_degree), double(b.max_degree)) * 0.5 +
             std::abs(a.degree_cv - b.degree_cv);
  if (a.skew != b.skew) d += 1.0;
  return d;
}

}  // namespace gnnone::tune
