// gnnone_tune — pretunes the synthetic dataset suite and emits the
// persistent tuning-cache artifact Backend::kAuto dispatches from
// (docs/AUTOTUNING.md §4).
//
// The whole pipeline is deterministic (deterministic datasets, deterministic
// simulator, deterministic search and serialization), so two runs with the
// same flags must produce byte-identical cache files — CI diffs them.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "tune/tuner.h"

namespace {

using gnnone::tune::TuneOp;
using gnnone::tune::TuneOptions;
using gnnone::tune::TuneReport;
using gnnone::tune::TuningCache;

struct Options {
  bool ci = false;
  std::string out = "TUNE_CACHE.json";
  std::vector<std::string> datasets;  // empty = scale default
  std::vector<TuneOp> ops;            // empty = scale default
  std::vector<int> dims;              // empty = scale default
  TuneOptions tune;
};

int usage(const char* argv0, int rc) {
  std::fprintf(
      rc ? stderr : stdout,
      "usage: %s [flags]\n"
      "  --scale=full|ci        suite scale (default full)\n"
      "  --out=FILE             cache artifact path (default TUNE_CACHE.json)\n"
      "  --datasets=G3,G5,...   override the dataset list\n"
      "  --ops=spmm,sddmm,spmv  override the op list\n"
      "  --dims=6,32            override the feature-dim sweep (SpMM/SDDMM)\n"
      "  --mode=auto|exhaustive|greedy  search regime (default auto)\n"
      "  --seed=N               operand seed (default 99)\n",
      argv0);
  return rc;
}

std::vector<std::string> split(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_args(int argc, char** argv, Options* o, int* rc) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      if (std::strcmp(a + 8, "ci") == 0) {
        o->ci = true;
      } else if (std::strcmp(a + 8, "full") == 0) {
        o->ci = false;
      } else {
        std::fprintf(stderr, "error: bad --scale '%s' (full|ci)\n", a + 8);
        *rc = 2;
        return false;
      }
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      o->out = a + 6;
    } else if (std::strncmp(a, "--datasets=", 11) == 0) {
      o->datasets = split(a + 11);
    } else if (std::strncmp(a, "--ops=", 6) == 0) {
      for (const std::string& name : split(a + 6)) {
        TuneOp op;
        if (!gnnone::tune::op_from_name(name, &op)) {
          std::fprintf(stderr, "error: unknown op '%s'\n", name.c_str());
          *rc = 2;
          return false;
        }
        o->ops.push_back(op);
      }
    } else if (std::strncmp(a, "--dims=", 7) == 0) {
      for (const std::string& d : split(a + 7)) {
        o->dims.push_back(std::atoi(d.c_str()));
      }
    } else if (std::strncmp(a, "--mode=", 7) == 0) {
      const char* m = a + 7;
      if (std::strcmp(m, "auto") == 0) {
        o->tune.mode = TuneOptions::Mode::kAuto;
      } else if (std::strcmp(m, "exhaustive") == 0) {
        o->tune.mode = TuneOptions::Mode::kExhaustive;
      } else if (std::strcmp(m, "greedy") == 0) {
        o->tune.mode = TuneOptions::Mode::kGreedy;
      } else {
        std::fprintf(stderr, "error: bad --mode '%s'\n", m);
        *rc = 2;
        return false;
      }
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      o->tune.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      *rc = usage(argv[0], 0);
      return false;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", a);
      *rc = usage(argv[0], 2);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  int rc = 0;
  if (!parse_args(argc, argv, &opt, &rc)) return rc;

  if (opt.datasets.empty()) {
    // ci: one representative per graph class (mirrors the bench harness's
    // ci kernel-suite reduction), sized for a CI smoke job.
    opt.datasets = opt.ci ? std::vector<std::string>{"G3", "G5", "G10", "G14"}
                          : gnnone::kernel_suite_ids();
  }
  if (opt.ops.empty()) {
    opt.ops = {TuneOp::kSpmm, TuneOp::kSddmm, TuneOp::kSpmv};
  }
  if (opt.dims.empty()) {
    opt.dims = opt.ci ? std::vector<int>{6, 32}
                      : std::vector<int>{6, 16, 32, 64};
  }

  const gpusim::DeviceSpec& dev = gpusim::default_device();
  TuningCache cache;
  int points = 0;
  std::printf("%-5s %-6s %4s  %-44s %12s %12s %7s\n", "graph", "op", "dim",
              "winner", "cycles", "default", "gain");
  for (const std::string& id : opt.datasets) {
    const gnnone::Dataset ds = gnnone::make_dataset(id);
    for (TuneOp op : opt.ops) {
      const std::vector<int> dims =
          op == TuneOp::kSpmv ? std::vector<int>{1} : opt.dims;
      for (int f : dims) {
        const TuneReport rep =
            gnnone::tune::tune_into(cache, dev, ds.coo, op, f, opt.tune);
        ++points;
        const double gain =
            rep.best.cycles > 0
                ? double(rep.default_cycles) / double(rep.best.cycles)
                : 1.0;
        std::printf("%-5s %-6s %4d  %-44s %12llu %12llu %6.2fx\n", id.c_str(),
                    gnnone::tune::op_name(op), f,
                    rep.best.candidate.name(op).c_str(),
                    static_cast<unsigned long long>(rep.best.cycles),
                    static_cast<unsigned long long>(rep.default_cycles),
                    gain);
      }
    }
  }

  if (!cache.save(opt.out)) {
    std::fprintf(stderr, "error: cannot write %s\n", opt.out.c_str());
    return 3;
  }
  std::printf("\ntuned %d points -> %s (%zu cache entries)\n", points,
              opt.out.c_str(), cache.size());
  return 0;
}
