// The autotuner's search engine (docs/AUTOTUNING.md §2).
//
// Cost metric: gpusim modeled cycles (KernelStats.cycles) — the same number
// every bench figure reports. Two regimes:
//
//  * exhaustive grid — every candidate of every eligible family is simulated
//    on the full workload and bit-checked against the CPU reference; used
//    automatically below exhaustive_nnz_limit NZEs (and always available via
//    Mode::kExhaustive).
//  * greedy coordinate descent with cost-model pruning — per family, knobs
//    are optimized one axis at a time against modeled cycles of a truncated
//    probe workload (the first probe_nnz NZEs, simulated through the same
//    gpusim pipeline); only each family's descent result and its default
//    are then simulated on the full workload. The probe acts as the cost
//    model: candidates it rejects are never fully simulated.
//
// Eligibility gate: a candidate may only win if its full-workload output is
// bit-identical to the CPU reference (kernels/reference.h). Every family
// default is always fully evaluated, so a tuned decision can never be worse
// than the best fixed default backend on the tuned point.
#pragma once

#include <cstdint>

#include "gpusim/device.h"
#include "tune/cache.h"
#include "tune/search_space.h"
#include "tune/signature.h"

namespace gnnone::tune {

struct TuneOptions {
  enum class Mode { kAuto, kExhaustive, kGreedy };
  Mode mode = Mode::kAuto;
  /// kAuto threshold: graphs at or below this many NZEs get the exhaustive
  /// grid, larger ones the greedy descent.
  std::int64_t exhaustive_nnz_limit = 16384;
  /// NZE count of the truncated probe workload the greedy descent scores
  /// candidates on.
  std::int64_t probe_nnz = 8192;
  /// Coordinate-descent sweeps over the knob axes (stops early when a sweep
  /// improves nothing).
  int max_sweeps = 2;
  /// Seed for the deterministic synthetic operands the tuner simulates on.
  std::uint64_t seed = 99;
};

/// Outcome of tuning one (graph, op, dim) point.
struct TuneReport {
  TuneKey key;          // what was tuned (device filled from the DeviceSpec)
  TuneDecision best;    // the winning candidate (bit_checked always true)
  /// Full-workload modeled cycles of the GNNOne-family default config — the
  /// "no autotuner" baseline a tuned decision is compared against.
  std::uint64_t default_cycles = 0;
  int evaluated_full = 0;   // full-workload simulations (each bit-checked)
  int evaluated_probe = 0;  // probe simulations (cost-model pruning)
  int rejected = 0;         // candidates dropped by the bit-check gate
  bool exhaustive = false;  // which regime ran
};

/// Tunes one op on one graph. `f` is the feature length (ignored for SpMV,
/// whose key dim is always 1). Deterministic: equal inputs and options give
/// an identical report. Throws std::invalid_argument when the graph is not
/// CSR-arranged.
TuneReport tune_op(const gpusim::DeviceSpec& dev, const Coo& coo, TuneOp op,
                   int f, const TuneOptions& opts = {});

/// tune_op + TuningCache::put of the resulting decision.
TuneReport tune_into(TuningCache& cache, const gpusim::DeviceSpec& dev,
                     const Coo& coo, TuneOp op, int f,
                     const TuneOptions& opts = {});

}  // namespace gnnone::tune
