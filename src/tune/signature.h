// Graph signatures for the autotuner (docs/AUTOTUNING.md §1).
//
// The paper's §5.4 ablations show that the winning kernel family and knob
// setting shift with graph *structure* (degree skew, density) and feature
// dimension, not with graph identity. A signature therefore fingerprints a
// CSR-arranged COO by the structural features those ablations vary over:
// shape, nnz, degree statistics and a coarse skew bucket. Tuning-cache
// entries are keyed by the signature's canonical string; unseen graphs fall
// back to the nearest cached signature under signature_distance().
#pragma once

#include <cstdint>
#include <string>

#include "graph/coo.h"

namespace gnnone::tune {

/// Coarse row-degree-distribution class, bucketed from the degree
/// coefficient of variation. Mirrors the dataset families the experiment
/// suite generates: road/k-mer grids are near-uniform, social/web power
/// laws are skewed, Kronecker tails are heavy.
enum class SkewBucket { kUniform, kModerate, kSkewed, kHeavy };

const char* skew_bucket_name(SkewBucket b);
/// Inverse of skew_bucket_name; false when the name is unknown.
bool skew_bucket_from_name(const std::string& name, SkewBucket* out);

struct GraphSignature {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t nnz = 0;
  double mean_degree = 0.0;   // nnz / rows
  std::int64_t max_degree = 0;
  double degree_cv = 0.0;     // stddev(row degree) / mean(row degree)
  SkewBucket skew = SkewBucket::kUniform;

  /// Canonical key string, e.g. "r4096,c4096,e65536,d16,m213,cv1.32,skewed".
  /// Deterministic (fixed float formatting) — used as the cache key.
  std::string key() const;

  bool operator==(const GraphSignature& o) const;
};

/// Fingerprints a CSR-arranged COO. O(nnz).
GraphSignature signature_of(const Coo& coo);

/// Structural distance for nearest-signature fallback: log-space gaps of
/// size/degree features plus a skew-bucket mismatch penalty. 0 for equal
/// signatures; ~0.7 per 2x size difference.
double signature_distance(const GraphSignature& a, const GraphSignature& b);

/// Coarsens a signature for shape dedup: rows/cols/nnz/max_degree round up
/// to powers of two, mean_degree and degree_cv snap to half-octave /
/// quarter-unit grids. Sampled serving minibatches differ slightly in every
/// exact field, which would give each batch a distinct cache key; coarse
/// keys collapse structurally-equivalent batches onto one entry so a
/// decision tuned for the first batch is an *exact* hit for the rest.
GraphSignature coarse_signature(const GraphSignature& s);

}  // namespace gnnone::tune
