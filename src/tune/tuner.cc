#include "tune/tuner.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "gen/rng.h"
#include "graph/convert.h"
#include "kernels/reference.h"

namespace gnnone::tune {

namespace {

/// One op's synthetic operands, aux formats and CPU-reference output —
/// everything needed to simulate and bit-check candidates on a graph.
struct Workload {
  Coo coo;  // owned copy (probe workloads are truncated)
  Csr csr;
  NeighborGroups ng;
  std::vector<float> edge_val;
  std::vector<float> x;
  std::vector<float> y_in;  // SDDMM second operand
  std::vector<float> want;  // CPU reference output (empty for probes)
  std::size_t out_size = 0;

  OpInputs inputs() const { return OpInputs{&coo, &csr, &ng}; }
};

/// Tuning operands are small integer-valued floats. Integer sums of this
/// magnitude are exact in float arithmetic and hence order-independent, so
/// every candidate family — whatever its reduction order (warp trees,
/// atomics, vectorized accumulators) — must match the CPU reference
/// *bit-for-bit* or it is genuinely wrong. (Products are <= 16, row sums and
/// dots stay far below 2^24, the float-exact integer range.) Modeled cycles
/// depend on addresses, not values, so the choice does not distort the cost.
std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = float(std::int64_t(rng.uniform(9)) - 4);
  return v;
}

Workload make_workload(const Coo& graph, TuneOp op, int f, std::uint64_t seed,
                       bool with_reference) {
  Workload w;
  w.coo = graph;
  w.csr = coo_to_csr(w.coo);
  w.ng = build_neighbor_groups(w.csr);
  const auto nnz = std::size_t(w.coo.nnz());
  const auto rows = std::size_t(w.coo.num_rows);
  const auto cols = std::size_t(w.coo.num_cols);
  w.edge_val = random_vec(nnz, seed + 1);
  switch (op) {
    case TuneOp::kSpmm:
      w.x = random_vec(cols * std::size_t(f), seed + 2);
      w.out_size = rows * std::size_t(f);
      break;
    case TuneOp::kSddmm:
      w.x = random_vec(rows * std::size_t(f), seed + 2);
      w.y_in = random_vec(cols * std::size_t(f), seed + 3);
      w.out_size = nnz;
      break;
    case TuneOp::kSpmv:
      w.x = random_vec(cols, seed + 2);
      w.out_size = rows;
      break;
  }
  if (with_reference) {
    w.want.resize(w.out_size);
    switch (op) {
      case TuneOp::kSpmm:
        ref::spmm(w.coo, w.edge_val, w.x, f, w.want);
        break;
      case TuneOp::kSddmm:
        ref::sddmm(w.coo, w.x, w.y_in, f, w.want);
        break;
      case TuneOp::kSpmv:
        ref::spmv(w.coo, w.edge_val, w.x, w.want);
        break;
    }
  }
  return w;
}

/// Truncated graph for probe simulation: the first `probe_nnz` NZEs. A
/// prefix of a CSR-arranged NZE list is itself CSR-arranged, and keeping
/// the vertex ranges intact preserves the feature-address patterns the
/// cost difference between candidates comes from.
Coo probe_graph(const Coo& graph, std::int64_t probe_nnz) {
  Coo p;
  p.num_rows = graph.num_rows;
  p.num_cols = graph.num_cols;
  const auto n = std::size_t(std::min<std::int64_t>(probe_nnz, graph.nnz()));
  p.row.assign(graph.row.begin(), graph.row.begin() + std::ptrdiff_t(n));
  p.col.assign(graph.col.begin(), graph.col.begin() + std::ptrdiff_t(n));
  return p;
}

struct Evaluation {
  std::uint64_t cycles = 0;
  bool bit_checked = false;
};

Evaluation evaluate(const gpusim::DeviceSpec& dev, const Candidate& cand,
                    TuneOp op, int f, const Workload& w) {
  std::vector<float> out(w.out_size);
  const gpusim::KernelStats ks = run_candidate(
      dev, cand, op, w.inputs(), w.edge_val, w.x, w.y_in, f, out);
  Evaluation e;
  e.cycles = ks.cycles;
  if (!w.want.empty()) {
    e.bit_checked = out.size() == w.want.size() &&
                    std::memcmp(out.data(), w.want.data(),
                                out.size() * sizeof(float)) == 0;
  }
  return e;
}

}  // namespace

TuneReport tune_op(const gpusim::DeviceSpec& dev, const Coo& coo, TuneOp op,
                   int f, const TuneOptions& opts) {
  if (!coo.is_csr_arranged()) {
    throw std::invalid_argument("tune_op: graph must be CSR-arranged");
  }
  if (op == TuneOp::kSpmv) f = 1;

  TuneReport rep;
  rep.key.signature = signature_of(coo);
  rep.key.op = op;
  rep.key.dim = f;
  rep.key.device = device_key(dev);

  // Degenerate graph: nothing to measure; dispatch the GNNOne default.
  if (coo.nnz() == 0) {
    rep.best.candidate = family_default(op, KernelFamily::kGnnOne);
    rep.best.bit_checked = true;
    return rep;
  }

  rep.exhaustive = opts.mode == TuneOptions::Mode::kExhaustive ||
                   (opts.mode == TuneOptions::Mode::kAuto &&
                    coo.nnz() <= opts.exhaustive_nnz_limit);

  const Workload full = make_workload(coo, op, f, opts.seed,
                                      /*with_reference=*/true);

  bool have_best = false;
  auto consider_full = [&](const Candidate& cand) {
    const Evaluation e = evaluate(dev, cand, op, f, full);
    ++rep.evaluated_full;
    if (!e.bit_checked) {
      ++rep.rejected;  // ineligible: output not bit-identical to reference
      return;
    }
    if (cand.family == KernelFamily::kGnnOne &&
        cand.name(op) == family_default(op, KernelFamily::kGnnOne).name(op)) {
      rep.default_cycles = e.cycles;
    }
    if (!have_best || e.cycles < rep.best.cycles) {
      rep.best.candidate = cand;
      rep.best.cycles = e.cycles;
      rep.best.bit_checked = true;
      have_best = true;
    }
  };

  if (rep.exhaustive) {
    for (KernelFamily fam : families(op)) {
      for (const Candidate& cand : family_grid(op, fam)) consider_full(cand);
    }
  } else {
    // Greedy regime: score knob settings on the probe workload (the cost
    // model), then fully evaluate only each family's descent result plus
    // its default.
    const Workload probe =
        make_workload(probe_graph(coo, opts.probe_nnz), op, f, opts.seed,
                      /*with_reference=*/false);
    auto probe_cost = [&](const Candidate& cand) {
      ++rep.evaluated_probe;
      return evaluate(dev, cand, op, f, probe).cycles;
    };

    for (KernelFamily fam : families(op)) {
      Candidate cur = family_default(op, fam);
      const int axes = num_axes(op, fam);
      if (axes > 0) {
        std::uint64_t cur_cost = probe_cost(cur);
        for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
          bool improved = false;
          for (int axis = 0; axis < axes; ++axis) {
            for (const Candidate& cand : axis_variants(op, fam, cur, axis)) {
              if (cand.name(op) == cur.name(op)) continue;
              const std::uint64_t c = probe_cost(cand);
              if (c < cur_cost) {  // strict: deterministic tie-breaking
                cur = cand;
                cur_cost = c;
                improved = true;
              }
            }
          }
          if (!improved) break;
        }
      }
      consider_full(family_default(op, fam));
      if (cur.name(op) != family_default(op, fam).name(op)) {
        consider_full(cur);
      }
    }
  }

  if (!have_best) {
    // Every candidate failed the bit-check (cannot happen for the in-tree
    // kernels, all of which are reference-exact; guards a future kernel
    // regression from silently winning).
    throw std::runtime_error("tune_op: no candidate matched the reference");
  }
  return rep;
}

TuneReport tune_into(TuningCache& cache, const gpusim::DeviceSpec& dev,
                     const Coo& coo, TuneOp op, int f,
                     const TuneOptions& opts) {
  TuneReport rep = tune_op(dev, coo, op, f, opts);
  cache.put(rep.key, rep.best);
  return rep;
}

}  // namespace gnnone::tune
