#include "tune/cache.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace gnnone::tune {

using util::Json;
using util::JsonError;

std::string device_key(const gpusim::DeviceSpec& dev) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "sms=%d,clk=%.3g,shmem=%zu,warps=%d",
                dev.num_sms, dev.sm_clock_ghz, dev.shared_mem_per_sm,
                dev.max_warps_per_sm);
  return buf;
}

std::string TuneKey::str() const {
  return std::string(op_name(op)) + "|" + std::to_string(dim) + "|" + device +
         "|" + signature.key();
}

std::string ServeKey::str() const {
  return "serve|" + workload + "|" + device + "|" + signature.key();
}

void TuningCache::put(const TuneKey& key, const TuneDecision& decision) {
  const std::string k = key.str();
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), k,
      [](const Entry& e, const std::string& s) { return e.key.str() < s; });
  if (it != entries_.end() && it->key.str() == k) {
    it->decision = decision;
    return;
  }
  entries_.insert(it, Entry{key, decision});
}

const TuneDecision* TuningCache::lookup(const TuneKey& key) const {
  const std::string k = key.str();
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), k,
      [](const Entry& e, const std::string& s) { return e.key.str() < s; });
  if (it != entries_.end() && it->key.str() == k) return &it->decision;
  return nullptr;
}

const TuneDecision* TuningCache::lookup_nearest(const TuneKey& key,
                                                double max_distance) const {
  const TuneDecision* best = nullptr;
  double best_d = max_distance;
  for (const Entry& e : entries_) {
    if (e.key.op != key.op || e.key.dim != key.dim ||
        e.key.device != key.device) {
      continue;
    }
    const double d = signature_distance(e.key.signature, key.signature);
    if (best == nullptr ? d <= best_d : d < best_d) {
      best = &e.decision;
      best_d = d;
    }
  }
  return best;
}

void TuningCache::put_serve(const ServeKey& key,
                            const ServeDecision& decision) {
  const std::string k = key.str();
  auto it = std::lower_bound(serve_entries_.begin(), serve_entries_.end(), k,
                             [](const ServeEntry& e, const std::string& s) {
                               return e.key.str() < s;
                             });
  if (it != serve_entries_.end() && it->key.str() == k) {
    it->decision = decision;
    return;
  }
  serve_entries_.insert(it, ServeEntry{key, decision});
}

const ServeDecision* TuningCache::lookup_serve(const ServeKey& key) const {
  const std::string k = key.str();
  auto it = std::lower_bound(serve_entries_.begin(), serve_entries_.end(), k,
                             [](const ServeEntry& e, const std::string& s) {
                               return e.key.str() < s;
                             });
  if (it != serve_entries_.end() && it->key.str() == k) return &it->decision;
  return nullptr;
}

const ServeDecision* TuningCache::lookup_serve_nearest(
    const ServeKey& key, double max_distance) const {
  const ServeDecision* best = nullptr;
  double best_d = max_distance;
  for (const ServeEntry& e : serve_entries_) {
    if (e.key.workload != key.workload || e.key.device != key.device) continue;
    const double d = signature_distance(e.key.signature, key.signature);
    if (best == nullptr ? d <= best_d : d < best_d) {
      best = &e.decision;
      best_d = d;
    }
  }
  return best;
}

namespace {

Json signature_json(const GraphSignature& s) {
  Json j = Json::object();
  j.set("rows", s.rows);
  j.set("cols", s.cols);
  j.set("nnz", s.nnz);
  j.set("mean_degree", s.mean_degree);
  j.set("max_degree", s.max_degree);
  j.set("degree_cv", s.degree_cv);
  j.set("skew", skew_bucket_name(s.skew));
  return j;
}

GraphSignature signature_from_json(const Json& j) {
  GraphSignature s;
  s.rows = j["rows"].as_int();
  s.cols = j["cols"].as_int();
  s.nnz = j["nnz"].as_int();
  s.mean_degree = j["mean_degree"].as_double();
  s.max_degree = j["max_degree"].as_int();
  s.degree_cv = j["degree_cv"].as_double();
  if (!skew_bucket_from_name(j["skew"].as_string(), &s.skew)) {
    throw JsonError("tuning cache: unknown skew bucket '" +
                    j["skew"].as_string() + "'");
  }
  return s;
}

Json candidate_json(const Candidate& c) {
  Json j = Json::object();
  j.set("family", family_name(c.family));
  j.set("cache_size", c.cfg.cache_size);
  j.set("vec_width", c.cfg.vec_width);
  j.set("policy", c.cfg.policy == SchedulePolicy::kConsecutive
                      ? "consecutive"
                      : "round_robin");
  j.set("stage1_caching", c.cfg.stage1_caching);
  j.set("row_reuse", c.cfg.row_reuse);
  j.set("unroll", c.cfg.unroll);
  j.set("warps_per_cta", c.cfg.warps_per_cta);
  j.set("items", c.items);
  return j;
}

Candidate candidate_from_json(const Json& j) {
  Candidate c;
  if (!family_from_name(j["family"].as_string(), &c.family)) {
    throw JsonError("tuning cache: unknown kernel family '" +
                    j["family"].as_string() + "'");
  }
  c.cfg.cache_size = int(j["cache_size"].as_int(128));
  c.cfg.vec_width = int(j["vec_width"].as_int(4));
  const std::string pol = j["policy"].as_string();
  if (pol == "round_robin") {
    c.cfg.policy = SchedulePolicy::kRoundRobin;
  } else if (pol == "consecutive" || pol.empty()) {
    c.cfg.policy = SchedulePolicy::kConsecutive;
  } else {
    throw JsonError("tuning cache: unknown schedule policy '" + pol + "'");
  }
  c.cfg.stage1_caching = j["stage1_caching"].as_bool(true);
  c.cfg.row_reuse = j["row_reuse"].as_bool(true);
  c.cfg.unroll = int(j["unroll"].as_int(4));
  c.cfg.warps_per_cta = int(j["warps_per_cta"].as_int(4));
  c.items = int(j["items"].as_int(4));
  c.cfg.Validate();  // a hand-edited cache cannot smuggle invalid knobs in
  return c;
}

}  // namespace

Json TuningCache::to_json() const {
  Json doc = Json::object();
  doc.set("schema", kCacheSchemaName);
  doc.set("version", kCacheSchemaVersion);
  Json arr = Json::array();
  for (const Entry& e : entries_) {  // entries_ is sorted by key
    Json j = Json::object();
    j.set("op", op_name(e.key.op));
    j.set("dim", e.key.dim);
    j.set("device", e.key.device);
    j.set("signature", signature_json(e.key.signature));
    j.set("decision", candidate_json(e.decision.candidate));
    j.set("cycles", e.decision.cycles);
    j.set("bit_checked", e.decision.bit_checked);
    arr.push_back(std::move(j));
  }
  doc.set("entries", std::move(arr));
  Json sarr = Json::array();
  for (const ServeEntry& e : serve_entries_) {  // sorted by key
    Json j = Json::object();
    j.set("workload", e.key.workload);
    j.set("device", e.key.device);
    j.set("signature", signature_json(e.key.signature));
    j.set("cache_policy", e.decision.cache_policy);
    j.set("gather_cycles", e.decision.gather_cycles);
    j.set("hit_rate", e.decision.hit_rate);
    sarr.push_back(std::move(j));
  }
  doc.set("serve_entries", std::move(sarr));
  return doc;
}

TuningCache TuningCache::from_json(const Json& doc) {
  if (doc["schema"].as_string() != kCacheSchemaName) {
    throw JsonError("tuning cache: unrecognized schema '" +
                    doc["schema"].as_string() + "'");
  }
  if (doc["version"].as_int() != kCacheSchemaVersion) {
    throw JsonError("tuning cache: unsupported version " +
                    std::to_string(doc["version"].as_int()));
  }
  TuningCache cache;
  for (const Json& j : doc["entries"].items()) {
    TuneKey key;
    if (!op_from_name(j["op"].as_string(), &key.op)) {
      throw JsonError("tuning cache: unknown op '" + j["op"].as_string() +
                      "'");
    }
    key.dim = int(j["dim"].as_int());
    key.device = j["device"].as_string();
    key.signature = signature_from_json(j["signature"]);
    TuneDecision d;
    d.candidate = candidate_from_json(j["decision"]);
    d.cycles = j["cycles"].as_uint();
    d.bit_checked = j["bit_checked"].as_bool();
    cache.put(key, d);
  }
  // Pre-policy cache files have no serve table; treat its absence as empty
  // so old artifacts keep loading.
  if (doc.contains("serve_entries")) {
    for (const Json& j : doc["serve_entries"].items()) {
      ServeKey key;
      key.workload = j["workload"].as_string();
      key.device = j["device"].as_string();
      key.signature = signature_from_json(j["signature"]);
      ServeDecision d;
      d.cache_policy = j["cache_policy"].as_string();
      if (d.cache_policy.empty()) {
        throw JsonError("tuning cache: serve entry with empty cache_policy");
      }
      d.gather_cycles = j["gather_cycles"].as_uint();
      d.hit_rate = j["hit_rate"].as_double();
      cache.put_serve(key, d);
    }
  }
  return cache;
}

bool TuningCache::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  out << to_json().dump() << "\n";
  out.flush();
  return bool(out);
}

std::optional<TuningCache> TuningCache::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::stringstream ss;
  ss << in.rdbuf();
  try {
    return from_json(Json::parse(ss.str()));
  } catch (const JsonError&) {
    return std::nullopt;
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

TuningCache TuningCache::load_or_empty(const std::string& path,
                                       std::string* warning) {
  if (warning != nullptr) warning->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};  // cold start: no cache file yet
  std::stringstream ss;
  ss << in.rdbuf();
  try {
    return from_json(Json::parse(ss.str()));
  } catch (const std::exception& e) {
    // Truncated, corrupted, or version-mismatched: the cache is advisory,
    // so degrade to empty (dispatch falls through to online tuning /
    // heuristics) rather than poisoning every kAuto launch with a throw.
    if (warning != nullptr) {
      *warning = "tuning cache '" + path +
                 "' ignored (corrupt or incompatible): " + e.what();
    }
    return {};
  }
}

}  // namespace gnnone::tune
