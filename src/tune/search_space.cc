#include "tune/search_space.h"

#include <cstdio>
#include <stdexcept>

#include "kernels/baselines.h"
#include "kernels/gnnone.h"

namespace gnnone::tune {

namespace {

// Knob value sets of the grid. Chosen to cover every setting the paper's
// §5.4 ablations sweep (Fig. 8: vec width + reuse toggles, Fig. 9: cache
// size, Fig. 10: schedule policy) plus the pipelining depth.
constexpr int kCacheSizes[] = {32, 64, 128, 256};
constexpr int kVecWidths[] = {1, 2, 4};
constexpr SchedulePolicy kPolicies[] = {SchedulePolicy::kConsecutive,
                                        SchedulePolicy::kRoundRobin};
constexpr bool kBools[] = {true, false};
constexpr int kUnrolls[] = {1, 4};
constexpr int kItems[] = {1, 2, 4, 8};

bool is_gnnone_family(KernelFamily f) {
  return f == KernelFamily::kGnnOne || f == KernelFamily::kGnnOneCsr;
}

/// Axis descriptors of the GNNOne families (SpMV has only the items axis).
enum GnnOneAxis {
  kAxisCache = 0,
  kAxisVec,
  kAxisPolicy,
  kAxisStage1,
  kAxisReuse,   // SDDMM only
  kAxisUnroll,
  kNumGnnOneAxes,
};

}  // namespace

const char* op_name(TuneOp op) {
  switch (op) {
    case TuneOp::kSpmm: return "spmm";
    case TuneOp::kSddmm: return "sddmm";
    case TuneOp::kSpmv: return "spmv";
  }
  return "?";
}

bool op_from_name(const std::string& name, TuneOp* out) {
  for (TuneOp op : {TuneOp::kSpmm, TuneOp::kSddmm, TuneOp::kSpmv}) {
    if (name == op_name(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

const char* family_name(KernelFamily f) {
  switch (f) {
    case KernelFamily::kGnnOne: return "gnnone";
    case KernelFamily::kGnnOneCsr: return "gnnone_csr";
    case KernelFamily::kNeighborGroup: return "neighbor_group";
    case KernelFamily::kVertexParallel: return "vertex_parallel";
    case KernelFamily::kEdgeParallel: return "edge_parallel";
    case KernelFamily::kMergePath: return "merge_path";
  }
  return "?";
}

bool family_from_name(const std::string& name, KernelFamily* out) {
  for (KernelFamily f :
       {KernelFamily::kGnnOne, KernelFamily::kGnnOneCsr,
        KernelFamily::kNeighborGroup, KernelFamily::kVertexParallel,
        KernelFamily::kEdgeParallel, KernelFamily::kMergePath}) {
    if (name == family_name(f)) {
      *out = f;
      return true;
    }
  }
  return false;
}

std::string Candidate::name(TuneOp op) const {
  char buf[128];
  if (op == TuneOp::kSpmv) {
    std::snprintf(buf, sizeof buf, "%s:items=%d", family_name(family), items);
    return buf;
  }
  if (!is_gnnone_family(family)) return family_name(family);
  std::snprintf(buf, sizeof buf,
                "%s:cache=%d,vec=%d,pol=%s,s1=%d,reuse=%d,unroll=%d",
                family_name(family), cfg.cache_size, cfg.vec_width,
                cfg.policy == SchedulePolicy::kConsecutive ? "cons" : "rr",
                cfg.stage1_caching ? 1 : 0, cfg.row_reuse ? 1 : 0, cfg.unroll);
  return buf;
}

std::vector<KernelFamily> families(TuneOp op) {
  switch (op) {
    case TuneOp::kSpmm:
      return {KernelFamily::kGnnOne, KernelFamily::kGnnOneCsr,
              KernelFamily::kNeighborGroup, KernelFamily::kVertexParallel};
    case TuneOp::kSddmm:
      return {KernelFamily::kGnnOne, KernelFamily::kEdgeParallel,
              KernelFamily::kVertexParallel};
    case TuneOp::kSpmv:
      return {KernelFamily::kGnnOne, KernelFamily::kMergePath};
  }
  return {};
}

Candidate family_default(TuneOp op, KernelFamily fam) {
  Candidate c;
  c.family = fam;
  (void)op;  // defaults are op-independent: GnnOneConfig{} and items=4
  return c;
}

std::vector<Candidate> family_grid(TuneOp op, KernelFamily fam) {
  std::vector<Candidate> out;
  if (op == TuneOp::kSpmv) {
    for (int items : kItems) {
      Candidate c;
      c.family = fam;
      c.items = items;
      out.push_back(c);
    }
    return out;
  }
  if (!is_gnnone_family(fam)) {
    out.push_back(family_default(op, fam));
    return out;
  }
  const bool sddmm = op == TuneOp::kSddmm;
  for (int cache : kCacheSizes) {
    for (int vec : kVecWidths) {
      for (SchedulePolicy pol : kPolicies) {
        for (bool s1 : kBools) {
          for (bool reuse : kBools) {
            if (!sddmm && !reuse) continue;  // row_reuse is SDDMM-only
            for (int unroll : kUnrolls) {
              Candidate c;
              c.family = fam;
              c.cfg.cache_size = cache;
              c.cfg.vec_width = vec;
              c.cfg.policy = pol;
              c.cfg.stage1_caching = s1;
              c.cfg.row_reuse = reuse;
              c.cfg.unroll = unroll;
              c.cfg.Validate();
              out.push_back(c);
            }
          }
        }
      }
    }
  }
  return out;
}

int num_axes(TuneOp op, KernelFamily fam) {
  if (op == TuneOp::kSpmv) return 1;  // items
  if (!is_gnnone_family(fam)) return 0;
  return kNumGnnOneAxes;
}

std::vector<Candidate> axis_variants(TuneOp op, KernelFamily fam,
                                     const Candidate& base, int axis) {
  std::vector<Candidate> out;
  if (axis < 0 || axis >= num_axes(op, fam)) return out;
  auto push = [&](auto&& mutate) {
    Candidate c = base;
    c.family = fam;
    mutate(c);
    out.push_back(c);
  };
  if (op == TuneOp::kSpmv) {
    for (int items : kItems) push([&](Candidate& c) { c.items = items; });
    return out;
  }
  switch (axis) {
    case kAxisCache:
      for (int v : kCacheSizes) push([&](Candidate& c) { c.cfg.cache_size = v; });
      break;
    case kAxisVec:
      for (int v : kVecWidths) push([&](Candidate& c) { c.cfg.vec_width = v; });
      break;
    case kAxisPolicy:
      for (SchedulePolicy v : kPolicies) {
        push([&](Candidate& c) { c.cfg.policy = v; });
      }
      break;
    case kAxisStage1:
      for (bool v : kBools) push([&](Candidate& c) { c.cfg.stage1_caching = v; });
      break;
    case kAxisReuse:
      if (op != TuneOp::kSddmm) {
        out.push_back(base);  // degenerate axis outside SDDMM
        break;
      }
      for (bool v : kBools) push([&](Candidate& c) { c.cfg.row_reuse = v; });
      break;
    case kAxisUnroll:
      for (int v : kUnrolls) push([&](Candidate& c) { c.cfg.unroll = v; });
      break;
    default: break;
  }
  return out;
}

namespace {

[[noreturn]] void bad_combination(const Candidate& cand, TuneOp op) {
  throw std::invalid_argument(std::string("tune: family '") +
                              family_name(cand.family) +
                              "' is not eligible for op '" + op_name(op) +
                              "'");
}

void require(const void* p, const char* what) {
  if (p == nullptr) {
    throw std::invalid_argument(std::string("tune: candidate requires ") +
                                what + " input format");
  }
}

}  // namespace

gpusim::KernelStats run_candidate(const gpusim::DeviceSpec& dev,
                                  const Candidate& cand, TuneOp op,
                                  const OpInputs& in,
                                  std::span<const float> edge_val,
                                  std::span<const float> x,
                                  std::span<const float> y_in, int f,
                                  std::span<float> out) {
  switch (op) {
    case TuneOp::kSpmm:
      switch (cand.family) {
        case KernelFamily::kGnnOne:
          require(in.coo, "COO");
          return gnnone_spmm(dev, *in.coo, edge_val, x, f, out, cand.cfg);
        case KernelFamily::kGnnOneCsr:
          require(in.csr, "CSR");
          return gnnone_spmm_csr(dev, *in.csr, edge_val, x, f, out, cand.cfg);
        case KernelFamily::kNeighborGroup:
          require(in.csr, "CSR");
          require(in.ng, "neighbor-group");
          return baselines::huang_spmm(dev, *in.csr, *in.ng, edge_val, x, f,
                                       out);
        case KernelFamily::kVertexParallel:
          require(in.csr, "CSR");
          return baselines::cusparse_spmm(dev, *in.csr, edge_val, x, f, out);
        default: bad_combination(cand, op);
      }
    case TuneOp::kSddmm:
      switch (cand.family) {
        case KernelFamily::kGnnOne:
          require(in.coo, "COO");
          return gnnone_sddmm(dev, *in.coo, x, y_in, f, out, cand.cfg);
        case KernelFamily::kEdgeParallel:
          require(in.coo, "COO");
          return baselines::dgl_sddmm(dev, *in.coo, x, y_in, f, out);
        case KernelFamily::kVertexParallel:
          require(in.csr, "CSR");
          return baselines::dgsparse_sddmm(dev, *in.csr, x, y_in, f, out);
        default: bad_combination(cand, op);
      }
    case TuneOp::kSpmv:
      switch (cand.family) {
        case KernelFamily::kGnnOne:
          require(in.coo, "COO");
          return gnnone_spmv(dev, *in.coo, edge_val, x, out, cand.items);
        case KernelFamily::kMergePath:
          require(in.csr, "CSR");
          return baselines::merge_spmv(dev, *in.csr, edge_val, x, out,
                                       cand.items);
        default: bad_combination(cand, op);
      }
  }
  bad_combination(cand, op);
}

}  // namespace gnnone::tune
