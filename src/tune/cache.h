// Persistent tuning cache (docs/AUTOTUNING.md §3).
//
// Maps (graph signature, op, feature dim, device) -> the tuned Candidate
// plus its tuning-time modeled cycles. Serialized as versioned,
// byte-deterministic JSON via the shared writer (util/json.h): entries are
// kept sorted by key so that save -> load -> save round-trips to identical
// bytes, which is what the CI determinism gate diffs.
//
// Lookup is exact first; lookup_nearest() falls back to the closest cached
// signature (same op/dim/device) under signature_distance(), so a graph the
// pretuning suite never saw still dispatches to a structurally informed
// choice instead of the hard-coded default.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gpusim/device.h"
#include "tune/search_space.h"
#include "tune/signature.h"
#include "util/json.h"

namespace gnnone::tune {

inline constexpr const char* kCacheSchemaName = "gnnone-tuning-cache";
inline constexpr int kCacheSchemaVersion = 1;

/// Canonical device discriminator of a DeviceSpec (the structural fields
/// that change which kernel/knobs win).
std::string device_key(const gpusim::DeviceSpec& dev);

/// Full lookup key of one cache entry.
struct TuneKey {
  GraphSignature signature;
  TuneOp op = TuneOp::kSpmm;
  int dim = 0;          // feature length (1 for SpMV)
  std::string device;   // device_key() of the tuning device

  /// Canonical string, e.g. "spmm|32|sms=108,...|r4096,...". Sort/equality
  /// key of the cache.
  std::string str() const;
};

/// A tuned decision: the winning candidate and why it won.
struct TuneDecision {
  Candidate candidate;
  std::uint64_t cycles = 0;  // modeled cycles measured while tuning
  bool bit_checked = false;  // output matched the CPU reference bit-for-bit
};

/// Lookup key of one serving cache-policy entry (the bake-off's verdict,
/// docs/SERVING.md §9). Lives beside the kernel entries in the same cache
/// file: the serving tier and the kernel tuner share one artifact.
struct ServeKey {
  GraphSignature signature;
  /// Canonical workload discriminator (serve::cache_workload_key): the
  /// ServeOptions fields that shape gather traffic, e.g.
  /// "alpha=0.100;fan=10-5;bs=24;f=32".
  std::string workload;
  std::string device;  // device_key() of the tuning device

  /// Canonical string, "serve|<workload>|<device>|<sigkey>". Sort/equality
  /// key of the serve table.
  std::string str() const;
};

/// A tuned serving decision: which cache policy won the bake-off and why.
/// The policy is stored as its canonical name (serve::cache_policy_name) so
/// tune/ stays independent of serve/.
struct ServeDecision {
  std::string cache_policy;          // "degree" | "presample_freq" | "clock"
  std::uint64_t gather_cycles = 0;   // winner's replayed gather cycles
  double hit_rate = 0.0;             // winner's replayed hit rate
};

class TuningCache {
 public:
  /// Inserts or overwrites the entry for `key`.
  void put(const TuneKey& key, const TuneDecision& decision);

  /// Exact-key lookup; nullptr on miss.
  const TuneDecision* lookup(const TuneKey& key) const;

  /// Nearest-signature fallback: the entry with the same (op, dim, device)
  /// whose signature minimizes signature_distance(), provided the distance
  /// is <= max_distance. Ties break on key order (deterministic). nullptr
  /// when nothing qualifies.
  const TuneDecision* lookup_nearest(const TuneKey& key,
                                     double max_distance = 3.0) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  struct Entry {
    TuneKey key;
    TuneDecision decision;
  };
  const std::vector<Entry>& entries() const { return entries_; }

  /// Serving cache-policy table (same exact/nearest discipline as the
  /// kernel entries; nearest requires matching workload + device).
  void put_serve(const ServeKey& key, const ServeDecision& decision);
  const ServeDecision* lookup_serve(const ServeKey& key) const;
  const ServeDecision* lookup_serve_nearest(const ServeKey& key,
                                            double max_distance = 3.0) const;

  struct ServeEntry {
    ServeKey key;
    ServeDecision decision;
  };
  const std::vector<ServeEntry>& serve_entries() const {
    return serve_entries_;
  }

  /// Versioned, deterministic document (entries sorted by key string).
  util::Json to_json() const;
  /// Parses a document produced by to_json(); throws util::JsonError on a
  /// schema/version mismatch or malformed entry.
  static TuningCache from_json(const util::Json& doc);

  /// File round-trip helpers. save() returns false on I/O failure; load()
  /// returns nullopt when the file is missing, unreadable, or malformed.
  bool save(const std::string& path) const;
  static std::optional<TuningCache> load(const std::string& path);

  /// Robust loading for dispatch paths: never throws. A missing file is the
  /// normal cold start (empty cache, no warning); a file that exists but is
  /// truncated, corrupted, or carries the wrong schema/version degrades to
  /// an *empty* cache with a description in *warning (when non-null), so
  /// Backend::kAuto falls through to online tuning / heuristics instead of
  /// aborting on a bad cache file.
  static TuningCache load_or_empty(const std::string& path,
                                   std::string* warning = nullptr);

 private:
  std::vector<Entry> entries_;            // kept sorted by key.str()
  std::vector<ServeEntry> serve_entries_;  // kept sorted by key.str()
};

}  // namespace gnnone::tune
