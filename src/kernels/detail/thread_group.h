// Thread-group geometry for the symbiotic scheduler (paper §4.2).
#pragma once

#include <stdexcept>

#include "gpusim/device.h"
#include "kernels/config.h"

namespace gnnone::detail {

/// How a warp is carved into thread-groups for a given feature length.
struct GroupGeom {
  int vec = 1;            // features per thread per vector load (1..4)
  int group_threads = 1;  // lanes cooperating on one NZE
  int layout_stride = 1;  // lane distance between groups (pow2 >= threads;
                          // the gap models the idle lanes of odd F)
  int n_groups = 1;       // thread-groups per warp
  int chunks = 1;         // vector loads per lane per NZE (f > 32*vec)

  int lanes_used() const { return group_threads * n_groups; }
  int lane_group(int l) const { return l / layout_stride; }
  int lane_in_group(int l) const { return l % layout_stride; }
  bool lane_active(int l) const {
    return lane_group(l) < n_groups && lane_in_group(l) < group_threads;
  }
};

/// Picks the widest vector load (<= cfg_vec, <= 4) dividing f, then forms
/// groups of f/vec lanes (capped at a full warp; wider features loop in
/// chunks). F=32,vec=4 -> 4 groups of 8, as in the paper's running example;
/// F=6 -> float3 loads, 16 groups of 2 (§4.4); vec=1 reproduces the vanilla
/// feature-parallel baseline with its idle lanes for F<32.
inline GroupGeom make_group_geom(int f, int cfg_vec) {
  if (f <= 0) throw std::invalid_argument("feature length must be positive");
  GroupGeom g;
  g.vec = 1;
  for (int v = std::min(cfg_vec, 4); v >= 1; --v) {
    if (f % v == 0) {
      g.vec = v;
      break;
    }
  }
  const int threads_needed = f / g.vec;
  g.group_threads = std::min(threads_needed, gpusim::kWarpSize);
  g.chunks = (threads_needed + g.group_threads - 1) / g.group_threads;
  g.layout_stride = 1;
  while (g.layout_stride < g.group_threads) g.layout_stride <<= 1;
  g.n_groups = gpusim::kWarpSize / g.layout_stride;
  return g;
}

/// Rounds of tree reduction needed across `lanes` lanes.
inline int reduction_rounds(int lanes) {
  int rounds = 0;
  int span = 1;
  while (span < lanes) {
    span <<= 1;
    ++rounds;
  }
  return rounds;
}

}  // namespace gnnone::detail
