// Runtime-width dispatch onto WarpCtx's compile-time vector loads/stores.
#pragma once

#include <array>
#include <stdexcept>

#include "gpusim/warp.h"

namespace gnnone::detail {

using VecLanes = std::array<std::array<float, 4>, gpusim::kWarpSize>;

/// Vector gather of `vec` consecutive floats per lane (float/float2/float3/
/// float4 in the CUDA original).
inline VecLanes load_vec(gpusim::WarpCtx& w, const float* base,
                         const gpusim::LaneArray<std::int64_t>& idx,
                         gpusim::Mask mask, int vec) {
  VecLanes out{};
  auto copy = [&out](const auto& v) {
    for (int l = 0; l < gpusim::kWarpSize; ++l) {
      for (std::size_t j = 0; j < v[l].size(); ++j) out[l][j] = v[l][j];
    }
  };
  switch (vec) {
    case 1: copy(w.ld_global_vec<float, 1>(base, idx, mask)); break;
    case 2: copy(w.ld_global_vec<float, 2>(base, idx, mask)); break;
    case 3: copy(w.ld_global_vec<float, 3>(base, idx, mask)); break;
    case 4: copy(w.ld_global_vec<float, 4>(base, idx, mask)); break;
    default: throw std::invalid_argument("vec width must be 1..4");
  }
  return out;
}

}  // namespace gnnone::detail
