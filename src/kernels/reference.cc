#include "kernels/reference.h"

#include <cassert>
#include <cstring>

namespace gnnone::ref {

void spmm(const Coo& coo, std::span<const float> edge_val,
          std::span<const float> x, int f, std::span<float> y) {
  assert(edge_val.size() == std::size_t(coo.nnz()));
  assert(x.size() == std::size_t(coo.num_cols) * std::size_t(f));
  assert(y.size() == std::size_t(coo.num_rows) * std::size_t(f));
  std::memset(y.data(), 0, y.size() * sizeof(float));
  for (std::size_t e = 0; e < coo.row.size(); ++e) {
    const auto r = std::size_t(coo.row[e]);
    const auto c = std::size_t(coo.col[e]);
    const float v = edge_val[e];
    for (int j = 0; j < f; ++j) {
      y[r * std::size_t(f) + std::size_t(j)] +=
          v * x[c * std::size_t(f) + std::size_t(j)];
    }
  }
}

void sddmm(const Coo& coo, std::span<const float> x, std::span<const float> y,
           int f, std::span<float> w) {
  assert(x.size() == std::size_t(coo.num_rows) * std::size_t(f));
  assert(y.size() == std::size_t(coo.num_cols) * std::size_t(f));
  assert(w.size() == std::size_t(coo.nnz()));
  for (std::size_t e = 0; e < coo.row.size(); ++e) {
    const auto r = std::size_t(coo.row[e]);
    const auto c = std::size_t(coo.col[e]);
    float dot = 0.0f;
    for (int j = 0; j < f; ++j) {
      dot += x[r * std::size_t(f) + std::size_t(j)] *
             y[c * std::size_t(f) + std::size_t(j)];
    }
    w[e] = dot;
  }
}

void spmv(const Coo& coo, std::span<const float> edge_val,
          std::span<const float> x, std::span<float> y) {
  assert(edge_val.size() == std::size_t(coo.nnz()));
  assert(x.size() == std::size_t(coo.num_cols));
  assert(y.size() == std::size_t(coo.num_rows));
  std::memset(y.data(), 0, y.size() * sizeof(float));
  for (std::size_t e = 0; e < coo.row.size(); ++e) {
    y[std::size_t(coo.row[e])] += edge_val[e] * x[std::size_t(coo.col[e])];
  }
}

std::vector<float> dense_spmm(const Coo& coo, std::span<const float> edge_val,
                              std::span<const float> x, int f) {
  // Materialize A densely, then multiply. Only for tiny test matrices.
  const auto n = std::size_t(coo.num_rows);
  const auto m = std::size_t(coo.num_cols);
  std::vector<float> a(n * m, 0.0f);
  for (std::size_t e = 0; e < coo.row.size(); ++e) {
    a[std::size_t(coo.row[e]) * m + std::size_t(coo.col[e])] = edge_val[e];
  }
  std::vector<float> out(n * std::size_t(f), 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < m; ++k) {
      const float av = a[i * m + k];
      if (av == 0.0f) continue;
      for (std::size_t j = 0; j < std::size_t(f); ++j) {
        out[i * std::size_t(f) + j] += av * x[k * std::size_t(f) + j];
      }
    }
  }
  return out;
}

std::vector<float> dense_sddmm(const Coo& coo, std::span<const float> x,
                               std::span<const float> y, int f) {
  // Materialize the full X * Y^T product, then sample it at the NZEs —
  // deliberately a different computation order than ref::sddmm.
  const auto n = std::size_t(coo.num_rows);
  const auto m = std::size_t(coo.num_cols);
  std::vector<float> p(n * m, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < std::size_t(f); ++j) {
      const float xv = x[i * std::size_t(f) + j];
      for (std::size_t k = 0; k < m; ++k) {
        p[i * m + k] += xv * y[k * std::size_t(f) + j];
      }
    }
  }
  std::vector<float> out(coo.row.size(), 0.0f);
  for (std::size_t e = 0; e < coo.row.size(); ++e) {
    out[e] = p[std::size_t(coo.row[e]) * m + std::size_t(coo.col[e])];
  }
  return out;
}

}  // namespace gnnone::ref
