// CPU golden implementations of the sparse kernels. Every simulated GPU
// kernel — GNNOne and all baselines — is verified against these in the test
// suite.
#pragma once

#include <span>
#include <vector>

#include "graph/coo.h"
#include "graph/csr.h"

namespace gnnone::ref {

/// SpMM: y[r, :] += sum over NZE (r, c) of edge_val[e] * x[c, :].
/// x is num_cols*f, y is num_rows*f (overwritten).
void spmm(const Coo& coo, std::span<const float> edge_val,
          std::span<const float> x, int f, std::span<float> y);

/// SDDMM: w[e] = dot(x[row[e], :], y[col[e], :]).
void sddmm(const Coo& coo, std::span<const float> x, std::span<const float> y,
           int f, std::span<float> w);

/// SpMV: y[r] += sum over NZE (r, c) of edge_val[e] * x[c].
void spmv(const Coo& coo, std::span<const float> edge_val,
          std::span<const float> x, std::span<float> y);

/// Dense cross-checks used to validate the reference kernels themselves:
/// SpMM == (dense A) * X and SDDMM == mask(A) ⊙ (X * Y^T).
std::vector<float> dense_spmm(const Coo& coo, std::span<const float> edge_val,
                              std::span<const float> x, int f);
std::vector<float> dense_sddmm(const Coo& coo, std::span<const float> x,
                               std::span<const float> y, int f);

}  // namespace gnnone::ref
