// GNNOne SDDMM: two-stage data load, float4 thread-groups, row-feature reuse
// across consecutive same-row NZEs, and the shortened tree reduction
// (paper §4.1, §4.2, §4.3).
#include <algorithm>
#include <array>
#include <cassert>
#include <vector>

#include "gpusim/launch.h"
#include "kernels/detail/thread_group.h"
#include "kernels/detail/vec_load.h"
#include "kernels/gnnone.h"

namespace gnnone {

namespace {

using gpusim::kWarpSize;
using gpusim::LaneArray;
using gpusim::Mask;

int normalized_cache_size(const GnnOneConfig& cfg) {
  int c = std::max(cfg.cache_size, kWarpSize);
  return (c + kWarpSize - 1) / kWarpSize * kWarpSize;
}

}  // namespace

gpusim::KernelStats gnnone_sddmm(const gpusim::DeviceSpec& dev, const Coo& coo,
                                 std::span<const float> x,
                                 std::span<const float> y, int f,
                                 std::span<float> w_out,
                                 const GnnOneConfig& cfg) {
  cfg.Validate();
  assert(x.size() == std::size_t(coo.num_rows) * std::size_t(f));
  assert(y.size() == std::size_t(coo.num_cols) * std::size_t(f));
  assert(w_out.size() == std::size_t(coo.nnz()));

  const eid_t nnz = coo.nnz();
  const int cache = normalized_cache_size(cfg);
  const auto geom = detail::make_group_geom(f, cfg.vec_width);
  const bool load_only = cfg.mode == KernelMode::kLoadOnly;
  const int rounds = detail::reduction_rounds(geom.group_threads);

  gpusim::LaunchConfig lc;
  lc.label = "gnnone_sddmm";
  const std::int64_t warps = (nnz + cache - 1) / cache;
  lc.warps_per_cta = cfg.warps_per_cta;
  lc.num_ctas = (warps + lc.warps_per_cta - 1) / lc.warps_per_cta;
  lc.shared_bytes_per_cta =
      cfg.stage1_caching ? std::size_t(lc.warps_per_cta) * std::size_t(cache) *
                               (2 * sizeof(vid_t))
                         : 0;
  lc.regs_per_thread = 28 + 2 * geom.vec * geom.chunks;

  const vid_t* row_ids = coo.row.data();
  const vid_t* col_ids = coo.col.data();

  auto body = [&](gpusim::WarpCtx& w) {
    const std::int64_t base = w.global_warp_id() * cache;
    if (base >= nnz) return;
    const int count = int(std::min<std::int64_t>(cache, nnz - base));

    // ------------------------------ Stage 1 ------------------------------
    std::span<vid_t> sh_row, sh_col;
    if (cfg.stage1_caching) {
      sh_row = w.shared().alloc<vid_t>(std::size_t(cache));
      sh_col = w.shared().alloc<vid_t>(std::size_t(cache));
      for (int c = 0; c < count; c += kWarpSize) {
        const int k = std::min(kWarpSize, count - c);
        const Mask mask = gpusim::lanes_below(k);
        LaneArray<std::int64_t> idx{};
        LaneArray<int> sidx{};
        for (int l = 0; l < k; ++l) {
          idx[l] = base + c + l;
          sidx[l] = c + l;
        }
        w.sh_write(sh_row, sidx, w.ld_global(row_ids, idx, mask), mask);
        w.sh_write(sh_col, sidx, w.ld_global(col_ids, idx, mask), mask);
      }
      w.sync();
    }

    // ------------------------------ Stage 2 ------------------------------
    const int G = geom.n_groups;
    const int per = (count + G - 1) / G;
    const bool consecutive = cfg.policy == SchedulePolicy::kConsecutive;

    // Row-feature registers, persistent across iterations (the data reuse).
    std::vector<std::array<float, 4>> rowfeat(
        std::size_t(kWarpSize) * std::size_t(geom.chunks),
        std::array<float, 4>{});
    std::vector<vid_t> cached_row(std::size_t(G), -1);

    auto feat_off = [&](int l, int c) {
      return (c * geom.group_threads + geom.lane_in_group(l)) * geom.vec;
    };

    const auto Gz = std::size_t(G);
    std::vector<detail::VecLanes> colfeat(static_cast<std::size_t>(geom.chunks));
    std::vector<vid_t> g_row(Gz);
    std::vector<vid_t> g_col(Gz);
    std::vector<int> g_pos(Gz);
    std::vector<bool> g_ok(Gz);

    for (int t = 0; t < per; ++t) {
      // --- fetch the NZE each group works on ---------------------------
      LaneArray<std::int64_t> gidx{};
      LaneArray<int> sidx{};
      Mask mask = 0;
      for (int g = 0; g < G; ++g) {
        const int pos = consecutive ? g * per + t : t * G + g;
        g_ok[std::size_t(g)] = pos < count;
        g_pos[std::size_t(g)] = pos;
        if (!g_ok[std::size_t(g)]) continue;
        for (int q = 0; q < geom.group_threads; ++q) {
          const int l = g * geom.layout_stride + q;
          gidx[l] = base + pos;
          sidx[l] = pos;
          mask |= Mask{1} << l;
        }
      }
      if (mask == 0) continue;
      LaneArray<vid_t> rows{}, cols{};
      if (cfg.stage1_caching) {
        rows = w.sh_read(std::span<const vid_t>(sh_row), sidx, mask);
        cols = w.sh_read(std::span<const vid_t>(sh_col), sidx, mask);
      } else {
        rows = w.ld_global(row_ids, gidx, mask);
        cols = w.ld_global(col_ids, gidx, mask);
        w.use();  // feature addresses depend on these ids
      }
      for (int g = 0; g < G; ++g) {
        if (!g_ok[std::size_t(g)]) continue;
        const int l = g * geom.layout_stride;
        g_row[std::size_t(g)] = rows[l];
        g_col[std::size_t(g)] = cols[l];
      }

      // --- load X[row] (reused across same-row NZEs) and Y[col] --------
      for (int c = 0; c < geom.chunks; ++c) {
        LaneArray<std::int64_t> xi{}, yi{};
        Mask xmask = 0, ymask = 0;
        for (int l = 0; l < kWarpSize; ++l) {
          if (!geom.lane_active(l)) continue;
          const int g = geom.lane_group(l);
          if (!g_ok[std::size_t(g)]) continue;
          const int off = feat_off(l, c);
          if (off >= f) continue;
          yi[l] = std::int64_t(g_col[std::size_t(g)]) * f + off;
          ymask |= Mask{1} << l;
          const bool reload =
              !cfg.row_reuse || cached_row[std::size_t(g)] != g_row[std::size_t(g)];
          if (reload) {
            xi[l] = std::int64_t(g_row[std::size_t(g)]) * f + off;
            xmask |= Mask{1} << l;
          }
        }
        if (xmask != 0) {
          const auto xv = detail::load_vec(w, x.data(), xi, xmask, geom.vec);
          for (int l = 0; l < kWarpSize; ++l) {
            if (xmask >> l & 1u) {
              rowfeat[std::size_t(l) * std::size_t(geom.chunks) +
                      std::size_t(c)] = xv[l];
            }
          }
        }
        if (ymask != 0) {
          colfeat[std::size_t(c)] =
              detail::load_vec(w, y.data(), yi, ymask, geom.vec);
        }
      }
      for (int g = 0; g < G; ++g) {
        if (g_ok[std::size_t(g)]) cached_row[std::size_t(g)] = g_row[std::size_t(g)];
      }

      if (load_only) continue;

      // --- dot product + tree reduction within each thread-group -------
      LaneArray<float> partial{};
      for (int c = 0; c < geom.chunks; ++c) {
        for (int l = 0; l < kWarpSize; ++l) {
          if (!geom.lane_active(l)) continue;
          const int g = geom.lane_group(l);
          if (!g_ok[std::size_t(g)]) continue;
          if (feat_off(l, c) >= f) continue;
          const auto& xr = rowfeat[std::size_t(l) * std::size_t(geom.chunks) +
                                   std::size_t(c)];
          const auto& yc = colfeat[std::size_t(c)][l];
          for (int j = 0; j < geom.vec; ++j) partial[l] += xr[std::size_t(j)] * yc[j];
        }
        w.alu(geom.vec);
      }
      // log2(group_threads) rounds of inter-thread communication — 3 for
      // F=32 with float4 versus 5 in the vanilla feature-parallel design.
      for (int r = 0; r < rounds; ++r) {
        const int delta = geom.layout_stride >> (r + 1);
        const auto shifted = w.shfl_down(partial, delta, geom.layout_stride);
        for (int l = 0; l < kWarpSize; ++l) partial[l] += shifted[l];
        w.alu(1);
      }

      // --- group leaders write the edge output -------------------------
      LaneArray<std::int64_t> oidx{};
      LaneArray<float> oval{};
      Mask omask = 0;
      for (int g = 0; g < G; ++g) {
        if (!g_ok[std::size_t(g)]) continue;
        const int l = g * geom.layout_stride;
        oidx[l] = base + g_pos[std::size_t(g)];
        oval[l] = partial[l];
        omask |= Mask{1} << l;
      }
      if (omask != 0) w.st_global(w_out.data(), oidx, oval, omask);
    }
  };

  return gpusim::launch(dev, lc, body);
}

}  // namespace gnnone
