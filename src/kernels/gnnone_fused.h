// Extension: fused GAT attention kernels on the GNNOne design.
//
// The paper evaluates GNNOne with *individual* kernels and leaves kernel
// fusion as future work (§5.3.2: "We believe kernel fusion would provide
// even better performance to GNNOne"). This module implements that future
// work: the GAT attention block
//
//     e   = LeakyReLU(a_src[u] + a_dst[v])      (edge logits)
//     α   = edge_softmax_v(e)                   (per-destination softmax)
//     out = Σ_u α[uv] · h[u]                    (weighted aggregation)
//
// collapses from five launches (SDDMM, elementwise, 2 segment reductions,
// SpMM) into two fused passes built on the same two-stage data-load design:
//
//   Pass 1  for each cached NZE: compute the logit, apply LeakyReLU, write
//           it to the edge tensor and atomically accumulate exp(e) into the
//           destination's normalizer (fused SDDMM + activation + softmax
//           numerator/denominator).
//   Pass 2  for each cached NZE: α = exp(e)/norm[dst] computed on the fly
//           and immediately used for the running-reduction SpMM — α is
//           never materialized in device memory.
//
// Numerical note: pass 1 uses a per-destination running max computed on the
// host-visible degree structure? No — it subtracts a per-destination max
// obtained by a cheap preliminary max pass (same data-load structure), so
// the softmax is stable for arbitrary logits, like the unfused version.
#pragma once

#include <span>

#include "gpusim/device.h"
#include "gpusim/stats.h"
#include "graph/coo.h"
#include "kernels/config.h"

namespace gnnone {

struct FusedAttentionStats {
  gpusim::KernelStats max_pass;
  gpusim::KernelStats logit_pass;
  gpusim::KernelStats aggregate_pass;
  std::uint64_t total_cycles() const {
    return max_pass.cycles + logit_pass.cycles + aggregate_pass.cycles;
  }
};

/// Fused GAT attention forward:
///   out[|V| x f]  = softmax-normalized attention aggregation of h,
///   alpha[|E|]    = the attention weights (needed by training's backward),
/// from per-vertex scores s_src (source side) and s_dst (destination side)
/// and vertex features h. leaky_slope is GAT's LeakyReLU slope.
FusedAttentionStats gnnone_fused_attention(
    const gpusim::DeviceSpec& dev, const Coo& coo,
    std::span<const float> s_src, std::span<const float> s_dst,
    std::span<const float> h, int f, float leaky_slope,
    std::span<float> alpha, std::span<float> out,
    const GnnOneConfig& cfg = {});

}  // namespace gnnone
