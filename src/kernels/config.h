// Tunable design knobs of the GNNOne kernels. Every ablation figure in the
// paper's §5.4 is a sweep over one of these fields.
#pragma once

#include <stdexcept>
#include <string>

namespace gnnone {

/// Stage-2 NZE assignment policy across thread-groups (paper §4.2.2).
enum class SchedulePolicy {
  kConsecutive,  // group g gets cached NZEs [g*B, (g+1)*B) — the winner
  kRoundRobin,   // group g gets NZEs g, g+G, g+2G, ...
};

/// Execution mode: kLoadOnly reproduces the paper's "partial prototype" used
/// for the Fig. 11 data-load breakdown (loads run, reduction and write-back
/// are elided).
enum class KernelMode { kFull, kLoadOnly };

struct GnnOneConfig {
  /// NZEs staged per warp in Stage 1; multiple of 32 (paper §4.1.1; Fig. 9
  /// sweeps 32 vs 128).
  int cache_size = 128;

  /// Features loaded per thread per vector instruction in Stage 2 (the
  /// float4 path; Fig. 8 sweeps 1 vs 4). Values 1..4; shrunk automatically
  /// when the feature length is not divisible (e.g. float3 for F=6, §4.4).
  int vec_width = 4;

  SchedulePolicy policy = SchedulePolicy::kConsecutive;

  /// Stage-1 staging of NZE ids (+ edge features for SpMM) in shared memory.
  /// Disabling reverts to per-iteration global index loads (the DGL-style
  /// "no data reuse" baseline of Fig. 8).
  bool stage1_caching = true;

  /// SDDMM only: keep the row's vertex features in registers across
  /// consecutive same-row NZEs (paper §4.2.2 data-reuse analysis).
  bool row_reuse = true;

  /// Software-pipelining depth for serial-accumulation loops: how many
  /// iterations' loads are hoisted ahead of their uses (compiler unroll).
  /// Applied uniformly to GNNOne and baselines with the same loop structure.
  int unroll = 4;

  int warps_per_cta = 4;

  KernelMode mode = KernelMode::kFull;

  /// Rejects knob combinations the kernels cannot honor. Called from every
  /// kernel entry point, so an invalid config fails loudly instead of being
  /// silently clamped — the autotuner's search-space generator relies on
  /// "accepted" meaning "ran exactly as specified".
  ///
  /// Throws std::invalid_argument naming the offending knob:
  ///  * cache_size: positive multiple of the warp size (32) — Stage 1 stages
  ///    NZEs in whole warp-wide chunks;
  ///  * vec_width: 1..4 — the float/float2/float3/float4 load paths;
  ///  * unroll >= 1, warps_per_cta >= 1.
  void Validate() const {
    if (cache_size <= 0 || cache_size % 32 != 0) {
      throw std::invalid_argument(
          "GnnOneConfig: cache_size must be a positive multiple of 32, got " +
          std::to_string(cache_size));
    }
    if (vec_width < 1 || vec_width > 4) {
      throw std::invalid_argument(
          "GnnOneConfig: vec_width must be in 1..4, got " +
          std::to_string(vec_width));
    }
    if (unroll < 1) {
      throw std::invalid_argument("GnnOneConfig: unroll must be >= 1, got " +
                                  std::to_string(unroll));
    }
    if (warps_per_cta < 1) {
      throw std::invalid_argument(
          "GnnOneConfig: warps_per_cta must be >= 1, got " +
          std::to_string(warps_per_cta));
    }
  }
};

}  // namespace gnnone
