// Reimplementations of every system the paper compares against, each on the
// same simulator substrate and each faithful to the cited design's documented
// strategy (format, parallelism, caching, reduction). See DESIGN.md §2 for
// the per-baseline pathology each one carries.
//
// All SpMM kernels compute  y[|V| x f] = A * x[|V| x f]  and all SDDMM
// kernels compute  w[e] = dot(x[row e], y[col e]); outputs are bit-checked
// against kernels/reference.h in the test suite.
#pragma once

#include <span>

#include "gpusim/device.h"
#include "gpusim/stats.h"
#include "graph/coo.h"
#include "graph/csr.h"
#include "graph/merge_path.h"
#include "graph/neighbor_group.h"
#include "graph/row_swizzle.h"

namespace gnnone::baselines {

// ---------------------------------------------------------------------------
// SpMM baselines (Fig. 4)
// ---------------------------------------------------------------------------

/// GE-SpMM [Huang et al., SC'20]: CSR vertex-parallel, one warp per row,
/// stages 32 col-ids in shared memory — but drops that caching when f < 32,
/// and its warp-per-row split inherits the row-skew imbalance.
gpusim::KernelStats gespmm_spmm(const gpusim::DeviceSpec& dev, const Csr& csr,
                                std::span<const float> edge_val,
                                std::span<const float> x, int f,
                                std::span<float> y);

/// cuSPARSE-like CSR SpMM: a well-tuned vertex-parallel row-split kernel
/// (vector loads, index staging) that still lacks workload balancing.
gpusim::KernelStats cusparse_spmm(const gpusim::DeviceSpec& dev,
                                  const Csr& csr,
                                  std::span<const float> edge_val,
                                  std::span<const float> x, int f,
                                  std::span<float> y);

/// GNNAdvisor [OSDI'21]: neighbor-group custom format; per-group metadata is
/// fetched by one lane and broadcast, feature lanes idle when f < 32, and the
/// fragmented last group of each row leaves residual imbalance.
gpusim::KernelStats gnnadvisor_spmm(const gpusim::DeviceSpec& dev,
                                    const Csr& csr, const NeighborGroups& ng,
                                    std::span<const float> edge_val,
                                    std::span<const float> x, int f,
                                    std::span<float> y);

/// Huang et al. [PPoPP'21]: neighbor-group format with tighter pipelining —
/// the closest SpMM competitor in the paper (~1.3-1.7x behind GNNOne).
gpusim::KernelStats huang_spmm(const gpusim::DeviceSpec& dev, const Csr& csr,
                               const NeighborGroups& ng,
                               std::span<const float> edge_val,
                               std::span<const float> x, int f,
                               std::span<float> y);

/// FeatGraph [SC'20]: plain vertex-parallel SpMM without index staging.
gpusim::KernelStats featgraph_spmm(const gpusim::DeviceSpec& dev,
                                   const Csr& csr,
                                   std::span<const float> edge_val,
                                   std::span<const float> x, int f,
                                   std::span<float> y);

/// Sputnik [SC'20]: row-swizzled CSR SpMM with vector loads.
gpusim::KernelStats sputnik_spmm(const gpusim::DeviceSpec& dev, const Csr& csr,
                                 const RowSwizzle& swizzle,
                                 std::span<const float> edge_val,
                                 std::span<const float> x, int f,
                                 std::span<float> y);

/// Yang et al. [Euro-Par'18] nonzero-split SpMM: edge-parallel and fully
/// balanced, but materializes all F dot products per NZE in registers before
/// reducing — the register blowup that collapses occupancy (paper §3.2).
gpusim::KernelStats nonzero_split_spmm(const gpusim::DeviceSpec& dev,
                                       const Coo& coo,
                                       std::span<const float> edge_val,
                                       std::span<const float> x, int f,
                                       std::span<float> y);

// ---------------------------------------------------------------------------
// SDDMM baselines (Fig. 3)
// ---------------------------------------------------------------------------

/// DGL [arXiv'19]: COO edge-parallel SDDMM — workload balanced, but one warp
/// handles one NZE at a time with one feature per thread, no NZE caching and
/// no row-feature reuse (paper §3.2: balance alone is not sufficient).
gpusim::KernelStats dgl_sddmm(const gpusim::DeviceSpec& dev, const Coo& coo,
                              std::span<const float> x,
                              std::span<const float> y, int f,
                              std::span<float> w);

/// dgSparse (used by dgNN [MLSys'22]): CSR vertex-parallel SDDMM; the row's
/// features are naturally reused across its NZEs, but the warp-per-row split
/// is imbalanced and NZE ids are re-loaded per edge.
gpusim::KernelStats dgsparse_sddmm(const gpusim::DeviceSpec& dev,
                                   const Csr& csr, std::span<const float> x,
                                   std::span<const float> y, int f,
                                   std::span<float> w);

/// FeatGraph [SC'20] SDDMM: vertex-parallel, one thread per feature (idle
/// lanes for f < 32), full-width tree reduction per NZE.
gpusim::KernelStats featgraph_sddmm(const gpusim::DeviceSpec& dev,
                                    const Csr& csr, std::span<const float> x,
                                    std::span<const float> y, int f,
                                    std::span<float> w);

/// Sputnik SDDMM: vertex-parallel with no row-feature reuse; launches a
/// |V|^2-shaped grid, so it fails beyond ~2M vertices (paper §5.1).
gpusim::KernelStats sputnik_sddmm(const gpusim::DeviceSpec& dev,
                                  const Csr& csr, std::span<const float> x,
                                  std::span<const float> y, int f,
                                  std::span<float> w);

/// Whether Sputnik's |V|^2 grid fits CUDA's launch limits at the *paper's*
/// dataset scale (the stand-ins are shrunk; the limit check uses the
/// original vertex count recorded in the Dataset).
bool sputnik_sddmm_supports(vid_t paper_vertices);

/// cuSPARSE SDDMM (CSR only, recently introduced): one thread walks a whole
/// NZE serially, feature by feature, fully uncoalesced — "extremely slow"
/// per the paper's measurements; also fails beyond ~2M vertices.
gpusim::KernelStats cusparse_sddmm(const gpusim::DeviceSpec& dev,
                                   const Csr& csr, std::span<const float> x,
                                   std::span<const float> y, int f,
                                   std::span<float> w);

bool cusparse_sddmm_supports(vid_t paper_vertices);

// ---------------------------------------------------------------------------
// SpMV baseline (Fig. 12)
// ---------------------------------------------------------------------------

/// Merge-SpMV [Merrill & Garland, SC'16]: merge-path partitioning over a
/// custom (CSR + diagonal metadata) format; per-warp binary search and
/// metadata broadcast replace COO's direct row-id loads.
gpusim::KernelStats merge_spmv(const gpusim::DeviceSpec& dev, const Csr& csr,
                               std::span<const float> edge_val,
                               std::span<const float> x, std::span<float> y,
                               int items_per_thread = 4);

}  // namespace gnnone::baselines
