// GNNOne COO SpMV (paper §4.4, Fig. 12): nonzero-split over the COO format.
// Stage-1 caching is dropped (feature length is 1); each thread reduces N
// consecutive NZEs thread-locally — the Merrill-style trade — but row ids
// come directly from COO (4 extra bytes per NZE) instead of merge-path
// metadata search.
#include <algorithm>
#include <cassert>
#include <cstring>

#include "gpusim/launch.h"
#include "kernels/gnnone.h"

namespace gnnone {

namespace {
using gpusim::kWarpSize;
using gpusim::LaneArray;
using gpusim::Mask;
}  // namespace

gpusim::KernelStats gnnone_spmv(const gpusim::DeviceSpec& dev, const Coo& coo,
                                std::span<const float> edge_val,
                                std::span<const float> x, std::span<float> y,
                                int nzes_per_thread) {
  // Same contract as GnnOneConfig::Validate(): reject the knob instead of
  // clamping it, so the autotuner can trust accepted == ran-as-specified.
  // The per-lane register files below hold at most 8 NZEs.
  if (nzes_per_thread < 1 || nzes_per_thread > 8) {
    throw std::invalid_argument(
        "gnnone_spmv: nzes_per_thread must be in 1..8, got " +
        std::to_string(nzes_per_thread));
  }
  assert(edge_val.size() == std::size_t(coo.nnz()));
  assert(x.size() == std::size_t(coo.num_cols));
  assert(y.size() == std::size_t(coo.num_rows));
  std::memset(y.data(), 0, y.size() * sizeof(float));

  const eid_t nnz = coo.nnz();
  const int N = nzes_per_thread;
  const std::int64_t per_warp = std::int64_t(kWarpSize) * N;

  gpusim::LaunchConfig lc;
  lc.label = "gnnone_spmv";
  const std::int64_t warps = (nnz + per_warp - 1) / per_warp;
  lc.warps_per_cta = 4;
  lc.num_ctas = (warps + lc.warps_per_cta - 1) / lc.warps_per_cta;
  lc.regs_per_thread = 30;

  const vid_t* row_ids = coo.row.data();
  const vid_t* col_ids = coo.col.data();

  auto body = [&](gpusim::WarpCtx& w) {
    const std::int64_t base = w.global_warp_id() * per_warp;
    if (base >= nnz) return;

    // Lane l owns NZEs [base + l*N, base + (l+1)*N).
    std::array<LaneArray<vid_t>, 8> rows{}, cols{};
    std::array<LaneArray<float>, 8> vals{}, xs{};
    assert(N <= 8);

    auto lane_mask_at = [&](int i) {
      Mask m = 0;
      for (int l = 0; l < kWarpSize; ++l) {
        if (base + std::int64_t(l) * N + i < nnz) m |= Mask{1} << l;
      }
      return m;
    };

    // Phase 1: the thread's N NZEs (row, col, val) — independent loads, one
    // window.
    for (int i = 0; i < N; ++i) {
      const Mask m = lane_mask_at(i);
      if (m == 0) break;
      LaneArray<std::int64_t> idx{};
      for (int l = 0; l < kWarpSize; ++l) idx[l] = base + std::int64_t(l) * N + i;
      rows[std::size_t(i)] = w.ld_global(row_ids, idx, m);
      cols[std::size_t(i)] = w.ld_global(col_ids, idx, m);
      vals[std::size_t(i)] = w.ld_global(edge_val.data(), idx, m);
    }
    w.use();

    // Phase 2: gather x[col] — addresses depend on phase 1.
    for (int i = 0; i < N; ++i) {
      const Mask m = lane_mask_at(i);
      if (m == 0) break;
      LaneArray<std::int64_t> idx{};
      for (int l = 0; l < kWarpSize; ++l) idx[l] = cols[std::size_t(i)][l];
      xs[std::size_t(i)] = w.ld_global(x.data(), idx, m);
    }
    w.use();

    // Phase 3: thread-local running reduction with atomic row-split flushes.
    LaneArray<float> acc{};
    LaneArray<vid_t> cur{};
    cur.fill(-1);
    for (int i = 0; i < N; ++i) {
      const Mask m = lane_mask_at(i);
      if (m == 0) break;
      LaneArray<std::int64_t> fidx{};
      LaneArray<float> fval{};
      Mask fmask = 0;
      for (int l = 0; l < kWarpSize; ++l) {
        if (!(m >> l & 1u)) continue;
        const vid_t r = rows[std::size_t(i)][l];
        if (cur[l] != r && cur[l] >= 0) {
          fidx[l] = cur[l];
          fval[l] = acc[l];
          fmask |= Mask{1} << l;
          acc[l] = 0.0f;
        }
        cur[l] = r;
        acc[l] += vals[std::size_t(i)][l] * xs[std::size_t(i)][l];
      }
      w.alu(1);
      if (fmask != 0) w.atomic_add(y.data(), fidx, fval, fmask);
    }
    // Final flush.
    LaneArray<std::int64_t> fidx{};
    LaneArray<float> fval{};
    Mask fmask = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      if (cur[l] >= 0) {
        fidx[l] = cur[l];
        fval[l] = acc[l];
        fmask |= Mask{1} << l;
      }
    }
    if (fmask != 0) w.atomic_add(y.data(), fidx, fval, fmask);
  };

  return gpusim::launch(dev, lc, body);
}

}  // namespace gnnone
