// DGL's COO edge-parallel SDDMM: workload-balanced (the strength the paper
// credits it) but with no NZE caching, no row-feature reuse, one feature per
// thread and a full-width tree reduction per NZE — so every edge pays two
// dependent index loads and a barrier-throttled single-load window (§3.2).
#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>

#include "gpusim/launch.h"
#include "kernels/baselines.h"
#include "kernels/detail/thread_group.h"

namespace gnnone::baselines {

namespace {
using gpusim::kWarpSize;
using gpusim::LaneArray;
using gpusim::Mask;

constexpr int kEdgesPerWarp = 32;
}  // namespace

gpusim::KernelStats dgl_sddmm(const gpusim::DeviceSpec& dev, const Coo& coo,
                              std::span<const float> x,
                              std::span<const float> y, int f,
                              std::span<float> w_out) {
  assert(x.size() == std::size_t(coo.num_rows) * std::size_t(f));
  assert(y.size() == std::size_t(coo.num_cols) * std::size_t(f));
  assert(w_out.size() == std::size_t(coo.nnz()));

  const eid_t nnz = coo.nnz();
  gpusim::LaunchConfig lc;
  lc.label = "dgl_sddmm";
  lc.warps_per_cta = 4;
  const std::int64_t warps = (nnz + kEdgesPerWarp - 1) / kEdgesPerWarp;
  lc.num_ctas = (warps + lc.warps_per_cta - 1) / lc.warps_per_cta;
  lc.regs_per_thread = 32;

  const int lanes = std::min(f, kWarpSize);  // 1 thread per feature
  const Mask fmask = gpusim::lanes_below(lanes);
  const int chunks = (f + kWarpSize - 1) / kWarpSize;
  const int rounds = detail::reduction_rounds(lanes);

  auto body = [&](gpusim::WarpCtx& w) {
    const std::int64_t base = w.global_warp_id() * kEdgesPerWarp;
    if (base >= nnz) return;
    const int count = int(std::min<std::int64_t>(kEdgesPerWarp, nnz - base));

    for (int t = 0; t < count; ++t) {
      const std::int64_t e = base + t;
      // Per-edge scalar index loads (no staging): the warp fetches the same
      // row/col pair, then every feature address depends on them.
      LaneArray<std::int64_t> ei{};
      for (int l = 0; l < kWarpSize; ++l) ei[l] = e;
      const vid_t r = w.ld_global(coo.row.data(), ei, fmask)[0];
      const vid_t c = w.ld_global(coo.col.data(), ei, fmask)[0];
      w.use();

      LaneArray<float> partial{};
      for (int ch = 0; ch < chunks; ++ch) {
        LaneArray<std::int64_t> xi{}, yi{};
        Mask m = 0;
        for (int l = 0; l < lanes; ++l) {
          const int j = ch * kWarpSize + l;
          if (j >= f) break;
          xi[l] = std::int64_t(r) * f + j;
          yi[l] = std::int64_t(c) * f + j;
          m |= Mask{1} << l;
        }
        const auto xv = w.ld_global(x.data(), xi, m);
        const auto yv = w.ld_global(y.data(), yi, m);
        for (int l = 0; l < kWarpSize; ++l) {
          if (m >> l & 1u) partial[l] += xv[l] * yv[l];
        }
        w.alu(1);
      }
      // Full-width tree reduction: 5 rounds at f = 32 (vs GNNOne's 3),
      // each an inter-thread communication point that caps the load window
      // at the single outstanding feature load (§3.2).
      int width = 1;
      while (width < lanes) width <<= 1;
      for (int q = 0; q < rounds; ++q) {
        const auto shifted = w.shfl_down(partial, width >> (q + 1), width);
        for (int l = 0; l < kWarpSize; ++l) partial[l] += shifted[l];
        w.alu(1);
      }
      LaneArray<std::int64_t> oi{};
      LaneArray<float> ov{};
      oi[0] = e;
      ov[0] = partial[0];
      w.st_global(w_out.data(), oi, ov, Mask{1});
    }
  };

  return gpusim::launch(dev, lc, body);
}

}  // namespace gnnone::baselines
