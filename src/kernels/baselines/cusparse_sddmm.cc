// cuSPARSE's recently-introduced CSR SDDMM, which the paper measures as
// "extremely slow" (§1, §5.1): one thread walks one NZE's entire dot product
// serially, so feature loads are uncoalesced lane-gathers (32 distinct rows
// per warp access) and the per-thread accumulation chain caps pipelining.
#include <algorithm>
#include <cassert>
#include <cstring>

#include "gpusim/launch.h"
#include "kernels/baselines.h"

namespace gnnone::baselines {

namespace {
using gpusim::kWarpSize;
using gpusim::LaneArray;
using gpusim::Mask;
}  // namespace

gpusim::KernelStats cusparse_sddmm(const gpusim::DeviceSpec& dev,
                                   const Csr& csr, std::span<const float> x,
                                   std::span<const float> y, int f,
                                   std::span<float> w_out) {
  assert(x.size() == std::size_t(csr.num_rows) * std::size_t(f));
  assert(y.size() == std::size_t(csr.num_cols) * std::size_t(f));
  assert(w_out.size() == std::size_t(csr.nnz()));
  std::memset(w_out.data(), 0, w_out.size() * sizeof(float));

  // One warp per row; each lane serially owns every 32nd NZE of the row.
  gpusim::LaunchConfig lc;
  lc.label = "cusparse_sddmm";
  lc.warps_per_cta = 4;
  const std::int64_t warps = csr.num_rows;
  lc.num_ctas = (warps + lc.warps_per_cta - 1) / lc.warps_per_cta;
  lc.regs_per_thread = 40;

  auto body = [&](gpusim::WarpCtx& w) {
    const vid_t r = vid_t(w.global_warp_id());
    if (r >= csr.num_rows) return;
    {
      LaneArray<std::int64_t> oi{};
      for (int l = 0; l < kWarpSize; ++l) oi[l] = r;
      (void)w.ld_global(csr.offsets.data(), oi);
      for (int l = 0; l < kWarpSize; ++l) oi[l] = r + 1;
      (void)w.ld_global(csr.offsets.data(), oi);
      w.use();
    }
    const eid_t rb = csr.row_begin(r);
    const int len = int(csr.row_end(r) - rb);

    for (int t0 = 0; t0 < len; t0 += kWarpSize) {
      const int k = std::min(kWarpSize, len - t0);
      const Mask m = gpusim::lanes_below(k);
      LaneArray<std::int64_t> ei{};
      for (int l = 0; l < k; ++l) ei[l] = rb + t0 + l;
      const auto cols = w.ld_global(csr.col.data(), ei, m);
      w.use();

      LaneArray<float> dot{};
      for (int j = 0; j < f; ++j) {
        // Lane l gathers x[r, j] and y[cols[l], j]: the y access touches 32
        // scattered rows — one transaction per lane.
        LaneArray<std::int64_t> xi{}, yi{};
        for (int l = 0; l < k; ++l) {
          xi[l] = std::int64_t(r) * f + j;
          yi[l] = std::int64_t(cols[l]) * f + j;
        }
        const auto xv = w.ld_global(x.data(), xi, m);
        const auto yv = w.ld_global(y.data(), yi, m);
        for (int l = 0; l < k; ++l) dot[l] += xv[l] * yv[l];
        w.alu(1);
        if ((j + 1) % 4 == 0) w.use();  // serial accumulation chain
      }
      w.use();
      w.st_global(w_out.data(), ei, dot, m);
    }
  };

  return gpusim::launch(dev, lc, body);
}

bool cusparse_sddmm_supports(vid_t paper_vertices) {
  // Observed failure threshold in the paper's experiments: around 2M
  // vertices (an internal 32-bit dimension product overflows).
  return paper_vertices <= 2100000;
}

}  // namespace gnnone::baselines
