// Yang et al. [Euro-Par'18] nonzero-split SpMM: the SpMV nonzero-split
// recipe extended to SpMM *as is*. Every lane owns one NZE and materializes
// all F dot products in registers before a segmented reduction at the very
// end — the register blowup (≈ F extra registers per thread) that collapses
// occupancy and starves the SM of latency-hiding warps (paper §3.2).
#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <vector>

#include "gpusim/launch.h"
#include "kernels/baselines.h"

namespace gnnone::baselines {

namespace {
using gpusim::kWarpSize;
using gpusim::LaneArray;
using gpusim::Mask;
}  // namespace

gpusim::KernelStats nonzero_split_spmm(const gpusim::DeviceSpec& dev,
                                       const Coo& coo,
                                       std::span<const float> edge_val,
                                       std::span<const float> x, int f,
                                       std::span<float> y) {
  assert(edge_val.size() == std::size_t(coo.nnz()));
  assert(x.size() == std::size_t(coo.num_cols) * std::size_t(f));
  assert(y.size() == std::size_t(coo.num_rows) * std::size_t(f));
  std::memset(y.data(), 0, y.size() * sizeof(float));

  const eid_t nnz = coo.nnz();
  gpusim::LaunchConfig lc;
  lc.label = "nonzero_split_spmm";
  lc.warps_per_cta = 4;
  const std::int64_t warps = (nnz + kWarpSize - 1) / kWarpSize;
  lc.num_ctas = (warps + lc.warps_per_cta - 1) / lc.warps_per_cta;
  // The defining pathology: ~F registers of materialized products per
  // thread (ptxas-level estimate for the CUDA original).
  lc.regs_per_thread = 32 + f;

  auto body = [&](gpusim::WarpCtx& w) {
    const std::int64_t base = w.global_warp_id() * kWarpSize;
    if (base >= nnz) return;
    const int k = int(std::min<std::int64_t>(kWarpSize, nnz - base));
    const Mask m = gpusim::lanes_below(k);

    // Coalesced NZE fetch (the strength inherited from SpMV nonzero-split).
    LaneArray<std::int64_t> ei{};
    for (int l = 0; l < k; ++l) ei[l] = base + l;
    const auto rows = w.ld_global(coo.row.data(), ei, m);
    const auto cols = w.ld_global(coo.col.data(), ei, m);
    const auto vals = w.ld_global(edge_val.data(), ei, m);
    w.use();

    // Materialize all F products per lane. Feature j is gathered across the
    // lanes' (distinct) columns: an uncoalesced stride-f access.
    std::vector<float> prod(std::size_t(kWarpSize) * std::size_t(f), 0.0f);
    for (int j = 0; j < f; ++j) {
      LaneArray<std::int64_t> fi{};
      for (int l = 0; l < k; ++l) fi[l] = std::int64_t(cols[l]) * f + j;
      const auto xv = w.ld_global(x.data(), fi, m);
      for (int l = 0; l < k; ++l) {
        prod[std::size_t(l) * std::size_t(f) + std::size_t(j)] =
            vals[l] * xv[l];
      }
      w.alu(1);
      if ((j + 1) % 8 == 0) w.use();  // register pressure limits pipelining
    }
    w.use();

    // Segmented reduction across lanes sharing a row id, feature by feature
    // (log2(32) shuffle rounds each), then one atomic per segment head.
    for (int j = 0; j < f; ++j) {
      LaneArray<float> v{};
      for (int l = 0; l < k; ++l) {
        v[l] = prod[std::size_t(l) * std::size_t(f) + std::size_t(j)];
      }
      // Functional segmented sum: head lane of each equal-row run collects
      // the run's total; cost modeled as the full shuffle tree.
      for (int d = 1; d < kWarpSize; d <<= 1) {
        (void)w.shfl_down(v, d);
        w.alu(1);
      }
      LaneArray<std::int64_t> oi{};
      LaneArray<float> ov{};
      Mask omask = 0;
      for (int l = 0; l < k; ++l) {
        if (l > 0 && rows[l] == rows[l - 1]) continue;  // not a segment head
        float sum = 0.0f;
        for (int q = l; q < k && rows[q] == rows[l]; ++q) {
          sum += prod[std::size_t(q) * std::size_t(f) + std::size_t(j)];
        }
        oi[l] = std::int64_t(rows[l]) * f + j;
        ov[l] = sum;
        omask |= Mask{1} << l;
      }
      if (omask != 0) w.atomic_add(y.data(), oi, ov, omask);
    }
  };

  return gpusim::launch(dev, lc, body);
}

}  // namespace gnnone::baselines
