// Neighbor-group SpMM (GNNAdvisor [OSDI'21] and Huang et al. [PPoPP'21]).
//
// A preprocessing step split rows into groups of <= 32 NZEs (see
// graph/neighbor_group.h); each warp processes one group. Workload balance
// is approximate: the metadata fetch keeps most lanes idle and needs a
// broadcast, the last group of every row is fragmented, and — like all
// feature-parallel designs — lanes idle when f < 32 (paper §4.1.1, §6).
#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <vector>

#include "gpusim/launch.h"
#include "kernels/baselines.h"
#include "kernels/detail/vec_load.h"

namespace gnnone::baselines {

namespace {

using gpusim::kWarpSize;
using gpusim::LaneArray;
using gpusim::Mask;

struct NgTuning {
  int vec_width = 1;
  int unroll = 4;
  bool packed_metadata = false;   // one metadata load instead of three
  bool shared_partials = false;   // aggregate via shared memory + barrier
  int regs_per_thread = 42;
};

gpusim::KernelStats ng_spmm(const gpusim::DeviceSpec& dev, const Csr& csr,
                            const NeighborGroups& ng,
                            std::span<const float> edge_val,
                            std::span<const float> x, int f,
                            std::span<float> y, const NgTuning& tune) {
  assert(edge_val.size() == std::size_t(csr.nnz()));
  assert(x.size() == std::size_t(csr.num_cols) * std::size_t(f));
  assert(y.size() == std::size_t(csr.num_rows) * std::size_t(f));
  assert(ng.group_size <= kWarpSize);
  std::memset(y.data(), 0, y.size() * sizeof(float));

  const int vec = std::max(1, std::min(tune.vec_width, 4));
  const int fb = std::min(f, kWarpSize * vec);
  const int fblocks = (f + fb - 1) / fb;
  const auto groups = std::int64_t(ng.num_groups());

  gpusim::LaunchConfig lc;
  lc.label = "neighbor_group_spmm";
  lc.warps_per_cta = 4;
  const std::int64_t warps = groups * fblocks;
  lc.num_ctas = (warps + lc.warps_per_cta - 1) / lc.warps_per_cta;
  lc.shared_bytes_per_cta =
      tune.shared_partials
          ? std::size_t(lc.warps_per_cta) * kWarpSize * sizeof(float)
          : 0;
  lc.regs_per_thread = tune.regs_per_thread;

  auto body = [&](gpusim::WarpCtx& w) {
    const std::int64_t wid = w.global_warp_id();
    if (wid >= warps) return;
    const auto g = std::size_t(wid / fblocks);
    const int fo = int(wid % fblocks) * fb;
    const int nf = std::min(fb, f - fo);
    const int nlanes = (nf + vec - 1) / vec;
    const Mask fmask = gpusim::lanes_below(nlanes);

    // Metadata fetch: lane 0 reads (row, start, len) — 3 loads (or 1 when
    // the format packs them) — then broadcasts to the warp. This is the
    // "few threads bring metadata + broadcast + search" overhead the paper
    // contrasts with COO's direct row ids (§5.4.5).
    {
      LaneArray<std::int64_t> mi{};
      mi[0] = std::int64_t(g);
      const Mask lane0 = 1;
      (void)w.ld_global(ng.group_row.data(), mi, lane0);
      if (!tune.packed_metadata) {
        (void)w.ld_global(ng.group_start.data(), mi, lane0);
        (void)w.ld_global(ng.group_len.data(), mi, lane0);
      }
      LaneArray<vid_t> bc{};
      (void)w.shfl_broadcast(bc, 0);  // flushes: everything depends on it
    }
    const vid_t row = ng.group_row[g];
    const eid_t start = ng.group_start[g];
    const int len = ng.group_len[g];

    // Coalesced load of the group's col ids and edge values; only `len`
    // lanes participate (fragmented last groups leave the rest idle).
    LaneArray<std::int64_t> ei{};
    const Mask emask = gpusim::lanes_below(len);
    for (int l = 0; l < len; ++l) ei[l] = start + l;
    const auto cols = w.ld_global(csr.col.data(), ei, emask);
    const auto vals = w.ld_global(edge_val.data(), ei, emask);
    w.use();  // feature addresses depend on the ids

    std::vector<std::array<float, 4>> acc(kWarpSize, std::array<float, 4>{});
    auto lane_feats = [&](int l) { return std::min(vec, nf - l * vec); };

    std::span<float> sh_part;
    if (tune.shared_partials) {
      sh_part = w.shared().alloc<float>(kWarpSize);
    }
    const int U = std::max(1, tune.unroll);
    std::vector<detail::VecLanes> bx(static_cast<std::size_t>(U));
    for (int e0 = 0; e0 < len; e0 += U) {
      const int n = std::min(U, len - e0);
      // Lane j of the group's NZE e needs a broadcastable col id; in the
      // real kernels it comes from a register shuffle — modeled by the ids
      // already being warp-resident after the coalesced load above.
      for (int t = 0; t < n; ++t) {
        // Vector loads only for lanes with a full vector's worth of
        // features; a tail lane whose remaining features do not fill a
        // vector falls back to scalar loads (a full-width load there would
        // read past the end of x — the CUDA original guards the same way).
        LaneArray<std::int64_t> fi{};
        Mask full = 0;
        for (int l = 0; l < nlanes; ++l) {
          fi[l] = std::int64_t(cols[e0 + t]) * f + fo + l * vec;
          if (lane_feats(l) == vec) full |= Mask{1} << l;
        }
        bx[std::size_t(t)] = detail::load_vec(w, x.data(), fi, fmask & full, vec);
        for (int l = 0; l < nlanes; ++l) {
          if (!(fmask >> l & 1u) || lane_feats(l) == vec) continue;
          for (int j = 0; j < lane_feats(l); ++j) {
            LaneArray<std::int64_t> si{};
            si[l] = fi[l] + j;
            bx[std::size_t(t)][l][std::size_t(j)] =
                w.ld_global(x.data(), si, Mask{1} << l)[l];
          }
        }
      }
      w.use();
      for (int t = 0; t < n; ++t) {
        for (int l = 0; l < nlanes; ++l) {
          const int k = lane_feats(l);
          for (int j = 0; j < k; ++j) {
            acc[std::size_t(l)][std::size_t(j)] +=
                vals[e0 + t] * bx[std::size_t(t)][l][j];
          }
        }
        w.alu(vec);
      }
      if (tune.shared_partials) {
        // GNNAdvisor stages partial sums in shared memory between neighbor
        // iterations, paying a barrier that caps the load window (§3.2).
        LaneArray<int> si{};
        LaneArray<float> sv{};
        for (int l = 0; l < kWarpSize; ++l) {
          si[l] = l;
          sv[l] = acc[std::size_t(l)][0];
        }
        w.sh_write(sh_part, si, sv, fmask);
        w.sync();
      }
    }

    // Several groups may share a row: atomic accumulation into y.
    for (int j = 0; j < vec; ++j) {
      LaneArray<std::int64_t> oi{};
      LaneArray<float> ov{};
      Mask omask = 0;
      for (int l = 0; l < nlanes; ++l) {
        if (j >= lane_feats(l)) continue;
        oi[l] = std::int64_t(row) * f + fo + l * vec + j;
        ov[l] = acc[std::size_t(l)][std::size_t(j)];
        omask |= Mask{1} << l;
      }
      if (omask != 0) w.atomic_add(y.data(), oi, ov, omask);
    }
  };

  return gpusim::launch(dev, lc, body);
}

}  // namespace

gpusim::KernelStats gnnadvisor_spmm(const gpusim::DeviceSpec& dev,
                                    const Csr& csr, const NeighborGroups& ng,
                                    std::span<const float> edge_val,
                                    std::span<const float> x, int f,
                                    std::span<float> y) {
  NgTuning t;
  t.vec_width = 1;
  t.unroll = 2;
  t.packed_metadata = false;
  t.shared_partials = true;
  return ng_spmm(dev, csr, ng, edge_val, x, f, y, t);
}

gpusim::KernelStats huang_spmm(const gpusim::DeviceSpec& dev, const Csr& csr,
                               const NeighborGroups& ng,
                               std::span<const float> edge_val,
                               std::span<const float> x, int f,
                               std::span<float> y) {
  NgTuning t;
  t.vec_width = 2;
  t.unroll = 4;
  t.packed_metadata = true;
  t.shared_partials = true;  // Huang et al. also aggregate via shared memory
  return ng_spmm(dev, csr, ng, edge_val, x, f, y, t);
}

}  // namespace gnnone::baselines
