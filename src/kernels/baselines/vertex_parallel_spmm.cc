// Vertex-parallel (warp-per-row) SpMM skeleton shared by GE-SpMM,
// cuSPARSE-like, FeatGraph and Sputnik. The systems genuinely share this
// structure; they differ in index staging, vector widths, pipelining depth
// and row ordering — exactly the knobs of the tuning struct below. All of
// them inherit the same pathology the paper targets: work per warp is the
// row length, so skewed graphs leave stragglers (§2, §3.1).
#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <vector>

#include "gpusim/launch.h"
#include "kernels/baselines.h"
#include "kernels/detail/vec_load.h"

namespace gnnone::baselines {

namespace {

using gpusim::kWarpSize;
using gpusim::LaneArray;
using gpusim::Mask;

struct VpSpmmTuning {
  bool stage_indices = true;   // cache 32 col ids + vals in shared memory
  int min_f_for_staging = 1;   // staging dropped below this feature length
  int vec_width = 1;           // features per thread per load
  int unroll = 4;              // software pipelining depth over NZEs
  int warps_per_row = 1;       // tuned kernels split a row across the CTA
  int regs_per_thread = 40;
  const RowSwizzle* swizzle = nullptr;  // optional row processing order
};

gpusim::KernelStats vp_spmm(const gpusim::DeviceSpec& dev, const Csr& csr,
                            std::span<const float> edge_val,
                            std::span<const float> x, int f,
                            std::span<float> y, const VpSpmmTuning& tune) {
  assert(edge_val.size() == std::size_t(csr.nnz()));
  assert(x.size() == std::size_t(csr.num_cols) * std::size_t(f));
  assert(y.size() == std::size_t(csr.num_rows) * std::size_t(f));
  std::memset(y.data(), 0, y.size() * sizeof(float));

  const int vec = std::max(1, std::min(tune.vec_width, 4));
  const int fb = std::min(f, kWarpSize * vec);  // features per warp pass
  const int fblocks = (f + fb - 1) / fb;
  const bool staging = tune.stage_indices && f >= tune.min_f_for_staging;

  const int wpr = std::max(1, tune.warps_per_row);
  gpusim::LaunchConfig lc;
  lc.label = "vertex_parallel_spmm";
  lc.warps_per_cta = 4;
  const std::int64_t warps = std::int64_t(csr.num_rows) * fblocks * wpr;
  lc.num_ctas = (warps + lc.warps_per_cta - 1) / lc.warps_per_cta;
  lc.shared_bytes_per_cta =
      staging ? std::size_t(lc.warps_per_cta) * kWarpSize *
                    (sizeof(vid_t) + sizeof(float))
              : 0;
  lc.regs_per_thread = tune.regs_per_thread;

  auto body = [&](gpusim::WarpCtx& w) {
    const std::int64_t wid = w.global_warp_id();
    if (wid >= warps) return;
    vid_t r = vid_t(wid / (std::int64_t(fblocks) * wpr));
    if (tune.swizzle != nullptr) r = tune.swizzle->order[std::size_t(r)];
    const std::int64_t rem = wid % (std::int64_t(fblocks) * wpr);
    const int fo = int(rem / wpr) * fb;
    const int slice = int(rem % wpr);
    const int nf = std::min(fb, f - fo);
    const int nlanes = (nf + vec - 1) / vec;
    const Mask fmask = gpusim::lanes_below(nlanes);

    // Row bounds (all lanes read the same two offsets).
    {
      LaneArray<std::int64_t> oi{};
      for (int l = 0; l < kWarpSize; ++l) oi[l] = r;
      (void)w.ld_global(csr.offsets.data(), oi);
      for (int l = 0; l < kWarpSize; ++l) oi[l] = r + 1;
      (void)w.ld_global(csr.offsets.data(), oi);
      w.use();  // the loop bound depends on these
    }
    // This warp's contiguous slice of the row (wpr == 1: the whole row).
    const int full_len = int(csr.row_end(r) - csr.row_begin(r));
    const int slice_len = (full_len + wpr - 1) / wpr;
    const eid_t rb = csr.row_begin(r) + eid_t(slice) * slice_len;
    const int len = std::max(0, std::min(slice_len, full_len - slice * slice_len));
    if (len == 0 && slice > 0) return;

    std::vector<std::array<float, 4>> acc(kWarpSize, std::array<float, 4>{});
    auto fidx_of = [&](int l, vid_t col) {
      return std::int64_t(col) * f + fo + l * vec;
    };
    auto lane_feats = [&](int l) {
      return std::min(vec, nf - l * vec);  // tail lane may cover fewer
    };

    const int U = std::max(1, tune.unroll);
    std::vector<vid_t> bcol(static_cast<std::size_t>(U));
    std::vector<float> bval(static_cast<std::size_t>(U));
    std::vector<detail::VecLanes> bx(static_cast<std::size_t>(U));

    // Feature gather for one column. Lanes with a full vector's worth of
    // features use the vector load; a tail lane whose remaining features do
    // not fill a vector falls back to scalar loads (a full-width load there
    // would read past the end of x — the CUDA original guards the same way).
    auto load_x = [&](vid_t col) {
      LaneArray<std::int64_t> fi{};
      Mask full = 0;
      for (int l = 0; l < nlanes; ++l) {
        fi[l] = fidx_of(l, col);
        if (lane_feats(l) == vec) full |= Mask{1} << l;
      }
      detail::VecLanes v = detail::load_vec(w, x.data(), fi, fmask & full, vec);
      for (int l = 0; l < nlanes; ++l) {
        if (!(fmask >> l & 1u) || lane_feats(l) == vec) continue;
        for (int j = 0; j < lane_feats(l); ++j) {
          LaneArray<std::int64_t> si{};
          si[l] = fidx_of(l, col) + j;
          v[l][std::size_t(j)] = w.ld_global(x.data(), si, Mask{1} << l)[l];
        }
      }
      return v;
    };

    auto consume_block = [&](int n) {
      w.use();
      for (int t = 0; t < n; ++t) {
        for (int l = 0; l < nlanes; ++l) {
          const int k = lane_feats(l);
          for (int j = 0; j < k; ++j) {
            acc[std::size_t(l)][std::size_t(j)] +=
                bval[std::size_t(t)] * bx[std::size_t(t)][l][j];
          }
        }
        w.alu(vec);
      }
    };

    if (staging) {
      auto sh_col = w.shared().alloc<vid_t>(kWarpSize);
      auto sh_val = w.shared().alloc<float>(kWarpSize);
      for (int chunk = 0; chunk < len; chunk += kWarpSize) {
        const int k = std::min(kWarpSize, len - chunk);
        const Mask m = gpusim::lanes_below(k);
        LaneArray<std::int64_t> idx{};
        LaneArray<int> sidx{};
        for (int l = 0; l < k; ++l) {
          idx[l] = rb + chunk + l;
          sidx[l] = l;
        }
        w.sh_write(sh_col, sidx, w.ld_global(csr.col.data(), idx, m), m);
        w.sh_write(sh_val, sidx, w.ld_global(edge_val.data(), idx, m), m);
        w.sync();
        for (int e0 = 0; e0 < k; e0 += U) {
          const int n = std::min(U, k - e0);
          for (int t = 0; t < n; ++t) {
            LaneArray<int> si{};
            for (int l = 0; l < kWarpSize; ++l) si[l] = e0 + t;
            bcol[std::size_t(t)] =
                w.sh_read(std::span<const vid_t>(sh_col), si, fmask)[0];
            bval[std::size_t(t)] =
                w.sh_read(std::span<const float>(sh_val), si, fmask)[0];
            bx[std::size_t(t)] = load_x(bcol[std::size_t(t)]);
          }
          consume_block(n);
        }
      }
    } else {
      for (int e0 = 0; e0 < len; e0 += U) {
        const int n = std::min(U, len - e0);
        // Index loads for the block (all lanes fetch the same scalar).
        for (int t = 0; t < n; ++t) {
          LaneArray<std::int64_t> ei{};
          for (int l = 0; l < kWarpSize; ++l) ei[l] = rb + e0 + t;
          bcol[std::size_t(t)] = w.ld_global(csr.col.data(), ei, fmask)[0];
          bval[std::size_t(t)] = w.ld_global(edge_val.data(), ei, fmask)[0];
        }
        w.use();  // feature addresses depend on the ids
        for (int t = 0; t < n; ++t) {
          bx[std::size_t(t)] = load_x(bcol[std::size_t(t)]);
        }
        consume_block(n);
      }
    }

    if (wpr > 1) {
      // Row split across warps: partial sums accumulate atomically.
      for (int j = 0; j < vec; ++j) {
        LaneArray<std::int64_t> ai{};
        LaneArray<float> av{};
        Mask am = 0;
        for (int l = 0; l < nlanes; ++l) {
          if (j >= lane_feats(l)) continue;
          ai[l] = std::int64_t(r) * f + fo + l * vec + j;
          av[l] = acc[std::size_t(l)][std::size_t(j)];
          am |= Mask{1} << l;
        }
        if (am != 0) w.atomic_add(y.data(), ai, av, am);
      }
      return;
    }
    // Vertex-parallel owns its row: direct (non-atomic) vector store.
    std::array<std::array<float, 4>, kWarpSize> out{};
    LaneArray<std::int64_t> oi{};
    Mask omask = 0;
    for (int l = 0; l < nlanes; ++l) {
      // Tail lanes with partial vectors fall back to scalar stores below.
      if (lane_feats(l) == vec) {
        out[l] = acc[std::size_t(l)];
        oi[l] = std::int64_t(r) * f + fo + l * vec;
        omask |= Mask{1} << l;
      }
    }
    switch (vec) {
      case 1: {
        LaneArray<float> v{};
        for (int l = 0; l < nlanes; ++l) v[l] = acc[std::size_t(l)][0];
        w.st_global(y.data(), oi, v, omask);
        break;
      }
      case 2: {
        std::array<std::array<float, 2>, kWarpSize> v{};
        for (int l = 0; l < nlanes; ++l) {
          v[l] = {acc[std::size_t(l)][0], acc[std::size_t(l)][1]};
        }
        w.st_global_vec<float, 2>(y.data(), oi, v, omask);
        break;
      }
      default:
        w.st_global_vec<float, 4>(y.data(), oi, out, omask);
        break;
    }
    // Scalar stores for tail lanes with partial vectors.
    for (int l = 0; l < nlanes; ++l) {
      const int k = lane_feats(l);
      if (k == vec) continue;
      for (int j = 0; j < k; ++j) {
        LaneArray<std::int64_t> si{};
        LaneArray<float> sv{};
        si[l] = std::int64_t(r) * f + fo + l * vec + j;
        sv[l] = acc[std::size_t(l)][std::size_t(j)];
        w.st_global(y.data(), si, sv, Mask{1} << l);
      }
    }
  };

  return gpusim::launch(dev, lc, body);
}

}  // namespace

gpusim::KernelStats gespmm_spmm(const gpusim::DeviceSpec& dev, const Csr& csr,
                                std::span<const float> edge_val,
                                std::span<const float> x, int f,
                                std::span<float> y) {
  VpSpmmTuning t;
  t.stage_indices = true;
  t.min_f_for_staging = 32;  // GE-SpMM drops caching below 32 (paper §4.1.1)
  t.vec_width = 1;
  t.unroll = 4;
  return vp_spmm(dev, csr, edge_val, x, f, y, t);
}

gpusim::KernelStats cusparse_spmm(const gpusim::DeviceSpec& dev,
                                  const Csr& csr,
                                  std::span<const float> edge_val,
                                  std::span<const float> x, int f,
                                  std::span<float> y) {
  VpSpmmTuning t;
  t.stage_indices = true;
  t.min_f_for_staging = 1;  // vendor kernel stages indices at every f
  t.vec_width = 2;
  t.unroll = 8;
  t.warps_per_row = 4;  // row split across the CTA
  return vp_spmm(dev, csr, edge_val, x, f, y, t);
}

gpusim::KernelStats featgraph_spmm(const gpusim::DeviceSpec& dev,
                                   const Csr& csr,
                                   std::span<const float> edge_val,
                                   std::span<const float> x, int f,
                                   std::span<float> y) {
  VpSpmmTuning t;
  t.stage_indices = false;  // template-generated code, no index staging
  t.vec_width = 1;
  t.unroll = 2;
  t.warps_per_row = 2;
  return vp_spmm(dev, csr, edge_val, x, f, y, t);
}

gpusim::KernelStats sputnik_spmm(const gpusim::DeviceSpec& dev, const Csr& csr,
                                 const RowSwizzle& swizzle,
                                 std::span<const float> edge_val,
                                 std::span<const float> x, int f,
                                 std::span<float> y) {
  VpSpmmTuning t;
  t.stage_indices = true;
  t.min_f_for_staging = 1;
  t.vec_width = 4;  // Sputnik is built around vector memory instructions
  t.unroll = 4;
  t.warps_per_row = 2;
  t.swizzle = &swizzle;
  return vp_spmm(dev, csr, edge_val, x, f, y, t);
}

}  // namespace gnnone::baselines
