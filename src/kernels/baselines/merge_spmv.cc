// Merge-SpMV [Merrill & Garland, SC'16]: perfectly balanced nonzero split
// via merge-path partitioning of (row boundaries x NZEs). The row id of an
// NZE is *not* stored; each warp binary-searches its starting coordinate on
// the diagonal (serial, dependent metadata probes) and walks row boundaries
// as it consumes NZEs — the metadata-search overhead the paper trades
// against COO's 4 extra bytes per NZE (§5.4.5, Fig. 12).
#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <vector>

#include "gpusim/launch.h"
#include "kernels/baselines.h"

namespace gnnone::baselines {

namespace {
using gpusim::kWarpSize;
using gpusim::LaneArray;
using gpusim::Mask;
}  // namespace

gpusim::KernelStats merge_spmv(const gpusim::DeviceSpec& dev, const Csr& csr,
                               std::span<const float> edge_val,
                               std::span<const float> x, std::span<float> y,
                               int items_per_thread) {
  assert(edge_val.size() == std::size_t(csr.nnz()));
  assert(x.size() == std::size_t(csr.num_cols));
  assert(y.size() == std::size_t(csr.num_rows));
  std::memset(y.data(), 0, y.size() * sizeof(float));

  const int ipt = std::max(1, items_per_thread);
  const std::int64_t per_warp = std::int64_t(kWarpSize) * ipt;
  const std::int64_t total = std::int64_t(csr.num_rows) + csr.nnz();
  const std::int64_t warps = (total + per_warp - 1) / per_warp;

  gpusim::LaunchConfig lc;
  lc.label = "merge_spmv";
  lc.warps_per_cta = 4;
  lc.num_ctas = (warps + lc.warps_per_cta - 1) / lc.warps_per_cta;
  lc.regs_per_thread = 34;

  // Host-side ground truth of the partition (what the device search finds).
  const auto coords = merge_path_partition(csr, int(warps));
  const int probes =
      int(std::ceil(std::log2(double(std::max<vid_t>(csr.num_rows, 2)))));

  auto body = [&](gpusim::WarpCtx& w) {
    const std::int64_t wid = w.global_warp_id();
    if (wid >= warps) return;
    const MergeCoord c0 = coords[std::size_t(wid)];
    const MergeCoord c1 = coords[std::size_t(wid) + 1];

    // Diagonal binary search for each *thread's* starting coordinate (as in
    // the reference implementation): every lane probes its own diagonal, so
    // each round is a scattered warp access, and the next probe depends on
    // the comparison (a serial chain of exposed L2 latencies).
    for (int p = 0; p < probes; ++p) {
      LaneArray<std::int64_t> pi{};
      // Lanes' diagonals sit `ipt` apart, so probe addresses cluster within
      // a few cache lines per round.
      for (int l = 0; l < kWarpSize; ++l) {
        pi[l] = (std::int64_t(c0.row) + l * ipt + p) % (csr.num_rows + 1);
      }
      (void)w.ld_global_l2(csr.offsets.data(), pi);
      if (p % 2 == 1) w.use();  // upper probe levels are L1-resident
    }
    w.use();

    const eid_t e_begin = c0.nze;
    const eid_t e_end = c1.nze;
    const int n_nze = int(e_end - e_begin);
    if (n_nze <= 0 && c1.row <= c0.row) return;

    // Phase 1: col ids + values of the warp's NZE span (each thread owns a
    // consecutive slice, like the COO kernel, minus the row-id array).
    const int per_thread = (n_nze + kWarpSize - 1) / kWarpSize;
    std::vector<LaneArray<vid_t>> cols(static_cast<std::size_t>(per_thread));
    std::vector<LaneArray<float>> vals(static_cast<std::size_t>(per_thread));
    std::vector<LaneArray<float>> xs(static_cast<std::size_t>(per_thread));
    auto mask_at = [&](int i) {
      Mask m = 0;
      for (int l = 0; l < kWarpSize; ++l) {
        if (std::int64_t(l) * per_thread + i < n_nze) m |= Mask{1} << l;
      }
      return m;
    };
    for (int i = 0; i < per_thread; ++i) {
      const Mask m = mask_at(i);
      if (m == 0) break;
      LaneArray<std::int64_t> ei{};
      for (int l = 0; l < kWarpSize; ++l) {
        ei[l] = e_begin + std::int64_t(l) * per_thread + i;
      }
      cols[std::size_t(i)] = w.ld_global(csr.col.data(), ei, m);
      vals[std::size_t(i)] = w.ld_global(edge_val.data(), ei, m);
    }
    w.use();

    // Phase 2: gather x[col].
    for (int i = 0; i < per_thread; ++i) {
      const Mask m = mask_at(i);
      if (m == 0) break;
      LaneArray<std::int64_t> xi{};
      for (int l = 0; l < kWarpSize; ++l) xi[l] = cols[std::size_t(i)][l];
      xs[std::size_t(i)] = w.ld_global(x.data(), xi, m);
    }
    w.use();

    // Phase 3: merge consumption. Row boundaries come from walking the
    // offsets list (one L2 probe per row advance) instead of per-NZE row ids.
    LaneArray<float> acc{};
    LaneArray<vid_t> cur{};
    cur.fill(-1);
    // Functional row of each NZE, derived from the offsets the walk reads.
    auto row_of = [&](eid_t e) {
      const auto it = std::upper_bound(csr.offsets.begin(), csr.offsets.end(), e);
      return vid_t(it - csr.offsets.begin() - 1);
    };
    for (int i = 0; i < per_thread; ++i) {
      const Mask m = mask_at(i);
      if (m == 0) break;
      LaneArray<std::int64_t> fidx{};
      LaneArray<float> fval{};
      Mask fmask = 0, advance = 0;
      for (int l = 0; l < kWarpSize; ++l) {
        if (!(m >> l & 1u)) continue;
        const eid_t e = e_begin + std::int64_t(l) * per_thread + i;
        const vid_t r = row_of(e);
        if (cur[l] != r) {
          advance |= Mask{1} << l;
          if (cur[l] >= 0) {
            fidx[l] = cur[l];
            fval[l] = acc[l];
            fmask |= Mask{1} << l;
            acc[l] = 0.0f;
          }
        }
        cur[l] = r;
        acc[l] += vals[std::size_t(i)][l] * xs[std::size_t(i)][l];
      }
      if (advance != 0) {
        // Boundary refresh for the advancing lanes.
        LaneArray<std::int64_t> bi{};
        for (int l = 0; l < kWarpSize; ++l) {
          if (advance >> l & 1u) bi[l] = cur[l] + 1;
        }
        (void)w.ld_global_l2(csr.offsets.data(), bi, advance);
        w.use();
      }
      w.alu(1);
      if (fmask != 0) w.atomic_add(y.data(), fidx, fval, fmask);
    }
    LaneArray<std::int64_t> fidx{};
    LaneArray<float> fval{};
    Mask fmask = 0;
    for (int l = 0; l < kWarpSize; ++l) {
      if (cur[l] >= 0) {
        fidx[l] = cur[l];
        fval[l] = acc[l];
        fmask |= Mask{1} << l;
      }
    }
    if (fmask != 0) w.atomic_add(y.data(), fidx, fval, fmask);
  };

  return gpusim::launch(dev, lc, body);
}

}  // namespace gnnone::baselines
