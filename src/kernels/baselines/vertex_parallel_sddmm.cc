// Vertex-parallel (warp-per-row) SDDMM skeleton shared by dgSparse/dgNN,
// FeatGraph and Sputnik. The row's X features can be reused across the row's
// NZEs (the one advantage of the vertex-centric variant), but the row split
// is imbalanced and none of these stage NZE ids (paper §3.2, §6).
#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <vector>

#include "gpusim/launch.h"
#include "kernels/baselines.h"
#include "kernels/detail/thread_group.h"
#include "kernels/detail/vec_load.h"

namespace gnnone::baselines {

namespace {

using gpusim::kWarpSize;
using gpusim::LaneArray;
using gpusim::Mask;

struct VpSddmmTuning {
  bool row_reuse = true;   // keep X[row] in registers across the row's NZEs
  int vec_width = 1;
  bool multi_edge = true;  // process 32/f edges at once when f < 32
  bool tile_scan = false;  // Sputnik: redundant column-tile bitmap walk
  int warps_per_row = 1;   // tuned kernels split a row across the CTA
  int regs_per_thread = 36;
};

gpusim::KernelStats vp_sddmm(const gpusim::DeviceSpec& dev, const Csr& csr,
                             std::span<const float> x,
                             std::span<const float> y, int f,
                             std::span<float> w_out,
                             const VpSddmmTuning& tune) {
  assert(x.size() == std::size_t(csr.num_rows) * std::size_t(f));
  assert(y.size() == std::size_t(csr.num_cols) * std::size_t(f));
  assert(w_out.size() == std::size_t(csr.nnz()));
  std::memset(w_out.data(), 0, w_out.size() * sizeof(float));

  const int vec = std::max(1, std::min(tune.vec_width, 4));
  const int fb = std::min(f, kWarpSize * vec);  // features per pass
  const int fblocks = (f + fb - 1) / fb;

  auto geom = detail::make_group_geom(fb, vec);
  if (!tune.multi_edge) {
    // One edge at a time; lanes beyond the feature width stay idle.
    geom.n_groups = 1;
  }

  const int wpr = std::max(1, tune.warps_per_row);
  gpusim::LaunchConfig lc;
  lc.label = "vertex_parallel_sddmm";
  lc.warps_per_cta = 4;
  const std::int64_t warps = std::int64_t(csr.num_rows) * fblocks * wpr;
  lc.num_ctas = (warps + lc.warps_per_cta - 1) / lc.warps_per_cta;
  lc.regs_per_thread = tune.regs_per_thread;

  auto body = [&](gpusim::WarpCtx& w) {
    const std::int64_t wid = w.global_warp_id();
    if (wid >= warps) return;
    const vid_t r = vid_t(wid / (std::int64_t(fblocks) * wpr));
    const std::int64_t rem = wid % (std::int64_t(fblocks) * wpr);
    const int fo = int(rem / wpr) * fb;
    const int slice = int(rem % wpr);
    const int nf = std::min(fb, f - fo);

    {
      LaneArray<std::int64_t> oi{};
      for (int l = 0; l < kWarpSize; ++l) oi[l] = r;
      (void)w.ld_global(csr.offsets.data(), oi);
      for (int l = 0; l < kWarpSize; ++l) oi[l] = r + 1;
      (void)w.ld_global(csr.offsets.data(), oi);
      w.use();
    }
    // This warp's contiguous slice of the row's NZEs (wpr == 1: all).
    const int full_len = int(csr.row_end(r) - csr.row_begin(r));
    const int slice_len = (full_len + wpr - 1) / wpr;
    const eid_t rb = csr.row_begin(r) + eid_t(slice) * slice_len;
    const int len =
        std::max(0, std::min(slice_len, full_len - slice * slice_len));

    if (tune.tile_scan) {
      // Sputnik walks a per-row bitmap of populated column tiles (32 tiles
      // per word) before touching NZEs — redundant metadata traffic that
      // grows with |V| regardless of the row's length.
      const int words = (csr.num_cols / (32 * 32)) + 1;
      LaneArray<std::int64_t> ti{};
      for (int t = 0; t < words; ++t) {
        ti[0] = t;
        (void)w.ld_global_l2(csr.offsets.data(), ti, Mask{1});
        if ((t + 1) % 8 == 0) w.use();
      }
      w.use();
    }
    if (len == 0) return;

    const int G = geom.n_groups;
    auto feat_off = [&](int l) { return geom.lane_in_group(l) * geom.vec; };
    auto lane_ok = [&](int l) {
      return geom.lane_active(l) && geom.lane_group(l) < G && feat_off(l) < nf;
    };

    // Row features loaded once per pass when reused (every group's lanes get
    // their own copy — in hardware this is the same registers).
    std::vector<std::array<float, 4>> rowfeat(kWarpSize,
                                              std::array<float, 4>{});
    if (tune.row_reuse) {
      LaneArray<std::int64_t> xi{};
      Mask m = 0;
      for (int l = 0; l < kWarpSize; ++l) {
        if (!lane_ok(l)) continue;
        xi[l] = std::int64_t(r) * f + fo + feat_off(l);
        m |= Mask{1} << l;
      }
      const auto xv = detail::load_vec(w, x.data(), xi, m, geom.vec);
      for (int l = 0; l < kWarpSize; ++l) {
        if (m >> l & 1u) rowfeat[std::size_t(l)] = xv[l];
      }
      w.use();
    }

    const int rounds = detail::reduction_rounds(geom.group_threads);
    for (int t0 = 0; t0 < len; t0 += G) {
      const int ng = std::min(G, len - t0);
      // Column ids for the ng edges of this iteration (no staging: straight
      // from global memory, re-loaded per edge).
      LaneArray<std::int64_t> ei{};
      Mask m = 0;
      for (int l = 0; l < kWarpSize; ++l) {
        if (!lane_ok(l) || geom.lane_group(l) >= ng) continue;
        ei[l] = rb + t0 + geom.lane_group(l);
        m |= Mask{1} << l;
      }
      if (m == 0) break;
      const auto cols = w.ld_global(csr.col.data(), ei, m);
      w.use();

      LaneArray<std::int64_t> yi{}, xi{};
      for (int l = 0; l < kWarpSize; ++l) {
        if (!(m >> l & 1u)) continue;
        yi[l] = std::int64_t(cols[l]) * f + fo + feat_off(l);
        xi[l] = std::int64_t(r) * f + fo + feat_off(l);
      }
      const auto yv = detail::load_vec(w, y.data(), yi, m, geom.vec);
      if (!tune.row_reuse) {
        const auto xv = detail::load_vec(w, x.data(), xi, m, geom.vec);
        for (int l = 0; l < kWarpSize; ++l) {
          if (m >> l & 1u) rowfeat[std::size_t(l)] = xv[l];
        }
      }

      LaneArray<float> partial{};
      for (int l = 0; l < kWarpSize; ++l) {
        if (!(m >> l & 1u)) continue;
        for (int j = 0; j < geom.vec; ++j) {
          if (feat_off(l) + j >= nf) break;
          partial[l] += rowfeat[std::size_t(l)][std::size_t(j)] * yv[l][j];
        }
      }
      w.alu(geom.vec);
      for (int q = 0; q < rounds; ++q) {
        const int delta = geom.layout_stride >> (q + 1);
        const auto shifted = w.shfl_down(partial, delta, geom.layout_stride);
        for (int l = 0; l < kWarpSize; ++l) partial[l] += shifted[l];
        w.alu(1);
      }

      LaneArray<std::int64_t> oi{};
      LaneArray<float> ov{};
      Mask om = 0;
      for (int g = 0; g < ng; ++g) {
        const int l = g * geom.layout_stride;
        if (!(m >> l & 1u)) continue;
        oi[l] = rb + t0 + g;
        ov[l] = partial[l];
        om |= Mask{1} << l;
      }
      if (om == 0) continue;
      if (fblocks == 1) {
        w.st_global(w_out.data(), oi, ov, om);
      } else {
        w.atomic_add(w_out.data(), oi, ov, om);  // partial dots per pass
      }
    }
  };

  return gpusim::launch(dev, lc, body);
}

}  // namespace

gpusim::KernelStats dgsparse_sddmm(const gpusim::DeviceSpec& dev,
                                   const Csr& csr, std::span<const float> x,
                                   std::span<const float> y, int f,
                                   std::span<float> w) {
  VpSddmmTuning t;
  t.row_reuse = true;
  t.vec_width = 1;
  t.multi_edge = true;  // hand-tuned kernel keeps all lanes busy for f < 32
  t.warps_per_row = 4;
  return vp_sddmm(dev, csr, x, y, f, w, t);
}

gpusim::KernelStats featgraph_sddmm(const gpusim::DeviceSpec& dev,
                                    const Csr& csr, std::span<const float> x,
                                    std::span<const float> y, int f,
                                    std::span<float> w) {
  VpSddmmTuning t;
  t.row_reuse = true;
  t.vec_width = 1;
  t.multi_edge = false;  // template kernel idles lanes when f < 32
  t.warps_per_row = 4;
  return vp_sddmm(dev, csr, x, y, f, w, t);
}

gpusim::KernelStats sputnik_sddmm(const gpusim::DeviceSpec& dev,
                                  const Csr& csr, std::span<const float> x,
                                  std::span<const float> y, int f,
                                  std::span<float> w) {
  VpSddmmTuning t;
  t.row_reuse = false;  // paper §6: Sputnik does not reuse row features
  t.vec_width = 4;
  t.multi_edge = false;
  t.tile_scan = true;
  return vp_sddmm(dev, csr, x, y, f, w, t);
}

bool sputnik_sddmm_supports(vid_t paper_vertices) {
  // The |V|^2-shaped grid exceeds CUDA's launch limits past ~1.5-2M
  // vertices: (V/32)^2 thread blocks no longer fit a 31-bit grid dimension.
  const double tiles = double(paper_vertices) / 32.0;
  return tiles * tiles < 2147483647.0;
}

}  // namespace gnnone::baselines
