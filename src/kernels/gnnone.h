// GNNOne's unified two-stage sparse kernels (the paper's core contribution).
//
// All three kernels share the same design (§4):
//   Stage 1 — edge-parallel, fully balanced, coalesced load of CACHE_SIZE
//             NZEs (+ edge features for SpMM) into shared memory per warp.
//   Stage 2 — the symbiotic thread scheduler: the warp is split into
//             thread-groups of F/vec lanes; each lane fetches `vec`
//             consecutive vertex features with one vector (float4) load;
//             groups are assigned consecutive cached NZEs, enabling
//             row-feature reuse (SDDMM) and running thread-local reduction
//             with atomic write-back at row splits (SpMM).
//
// Inputs use the standard CSR-arranged COO format only.
#pragma once

#include <span>

#include "gpusim/device.h"
#include "gpusim/stats.h"
#include "graph/coo.h"
#include "graph/csr.h"
#include "kernels/config.h"

namespace gnnone {

/// SpMM: y[|V| x f] = A(coo, edge_val) * x[|V| x f].
gpusim::KernelStats gnnone_spmm(const gpusim::DeviceSpec& dev, const Coo& coo,
                                std::span<const float> edge_val,
                                std::span<const float> x, int f,
                                std::span<float> y,
                                const GnnOneConfig& cfg = {});

/// SDDMM: w[e] = dot(x[row[e], :], y[col[e], :]) for every NZE.
gpusim::KernelStats gnnone_sddmm(const gpusim::DeviceSpec& dev, const Coo& coo,
                                 std::span<const float> x,
                                 std::span<const float> y, int f,
                                 std::span<float> w,
                                 const GnnOneConfig& cfg = {});

/// GNNOne SpMM over a CSR input (§5.4.5 format trade-off): the two-stage
/// design is format-agnostic as long as the row id of each NZE can be
/// located; with CSR the row ids are *derived* — a per-warp binary search
/// on the offsets metadata plus boundary walking during Stage-1 staging —
/// instead of loaded (COO's 4 extra bytes per NZE).
gpusim::KernelStats gnnone_spmm_csr(const gpusim::DeviceSpec& dev,
                                    const Csr& csr,
                                    std::span<const float> edge_val,
                                    std::span<const float> x, int f,
                                    std::span<float> y,
                                    const GnnOneConfig& cfg = {});

/// COO nonzero-split SpMV (Fig. 12): Stage-1 caching is dropped (feature
/// length is 1, §4.4); each thread reduces N consecutive NZEs thread-locally
/// and writes row segments with atomics.
gpusim::KernelStats gnnone_spmv(const gpusim::DeviceSpec& dev, const Coo& coo,
                                std::span<const float> edge_val,
                                std::span<const float> x, std::span<float> y,
                                int nzes_per_thread = 4);

}  // namespace gnnone
