// GNNOne SpMM: two-stage data load + symbiotic thread scheduler with running
// thread-local reduction and atomic write-back (paper §4.1-§4.3).
#include <algorithm>
#include <cmath>
#include <array>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "gpusim/launch.h"
#include "kernels/detail/thread_group.h"
#include "kernels/detail/vec_load.h"
#include "graph/convert.h"
#include "kernels/gnnone.h"

namespace gnnone {

namespace {

using gpusim::kWarpSize;
using gpusim::LaneArray;
using gpusim::Mask;

int normalized_cache_size(const GnnOneConfig& cfg) {
  int c = std::max(cfg.cache_size, kWarpSize);
  return (c + kWarpSize - 1) / kWarpSize * kWarpSize;
}

}  // namespace

// Stage-1 row-id source: COO reads the row array directly (4 extra bytes
// per NZE); the CSR variant locates each warp's starting row by binary
// search on the offsets metadata and walks boundaries while staging — the
// trade-off the paper analyzes in §5.4.5.
gpusim::KernelStats gnnone_spmm_impl(const gpusim::DeviceSpec& dev,
                                     const Coo& coo,
                                     std::span<const eid_t> csr_offsets,
                                     std::span<const float> edge_val,
                                     std::span<const float> x, int f,
                                     std::span<float> y,
                                     const GnnOneConfig& cfg) {
  cfg.Validate();
  const bool from_csr = !csr_offsets.empty();
  assert(edge_val.size() == std::size_t(coo.nnz()));
  assert(x.size() == std::size_t(coo.num_cols) * std::size_t(f));
  assert(y.size() == std::size_t(coo.num_rows) * std::size_t(f));
  std::memset(y.data(), 0, y.size() * sizeof(float));

  const eid_t nnz = coo.nnz();
  const int cache = normalized_cache_size(cfg);
  const auto geom = detail::make_group_geom(f, cfg.vec_width);
  const bool load_only = cfg.mode == KernelMode::kLoadOnly;

  gpusim::LaunchConfig lc;
  lc.label = "gnnone_spmm";
  const std::int64_t warps = (nnz + cache - 1) / cache;
  lc.warps_per_cta = cfg.warps_per_cta;
  lc.num_ctas = (warps + lc.warps_per_cta - 1) / lc.warps_per_cta;
  lc.shared_bytes_per_cta =
      cfg.stage1_caching
          ? std::size_t(lc.warps_per_cta) * std::size_t(cache) *
                (2 * sizeof(vid_t) + sizeof(float))
          : 0;
  // Running reduction keeps register pressure flat: ids, loop state, and
  // vec*chunks accumulators (ptxas-level estimate for the CUDA original).
  lc.regs_per_thread = 32 + geom.vec * geom.chunks;

  const vid_t* row_ids = coo.row.data();
  const vid_t* col_ids = coo.col.data();

  const int search_probes =
      from_csr
          ? int(std::ceil(std::log2(double(std::max<vid_t>(coo.num_rows, 2)))))
          : 0;

  auto body = [&](gpusim::WarpCtx& w) {
    const std::int64_t base = w.global_warp_id() * cache;
    if (base >= nnz) return;
    const int count = int(std::min<std::int64_t>(cache, nnz - base));

    if (from_csr) {
      // Binary search for the warp's starting row: serial dependent probes
      // of the offsets metadata.
      for (int p = 0; p < search_probes; ++p) {
        LaneArray<std::int64_t> pi{};
        pi[0] = (base + p) % (coo.num_rows + 1);
        (void)w.ld_global_l2(csr_offsets.data(), pi, Mask{1});
        if (p % 2 == 1) w.use();  // upper levels are L1-resident
      }
      w.use();
    }

    // ------------------------------ Stage 1 ------------------------------
    std::span<vid_t> sh_row, sh_col;
    std::span<float> sh_val;
    if (cfg.stage1_caching) {
      sh_row = w.shared().alloc<vid_t>(std::size_t(cache));
      sh_col = w.shared().alloc<vid_t>(std::size_t(cache));
      sh_val = w.shared().alloc<float>(std::size_t(cache));
      for (int c = 0; c < count; c += kWarpSize) {
        const int k = std::min(kWarpSize, count - c);
        const Mask mask = gpusim::lanes_below(k);
        LaneArray<std::int64_t> idx{};
        LaneArray<int> sidx{};
        for (int l = 0; l < k; ++l) {
          idx[l] = base + c + l;
          sidx[l] = c + l;
        }
        if (from_csr) {
          // Row ids are not stored: derive them by walking the offsets
          // metadata (one L2 probe per staging chunk after the initial
          // binary search below) and stage the derived ids.
          LaneArray<vid_t> rows{};
          for (int l = 0; l < k; ++l) rows[l] = row_ids[base + c + l];
          LaneArray<std::int64_t> oi{};
          oi[0] = rows[0];
          (void)w.ld_global_l2(csr_offsets.data(), oi, Mask{1});
          w.use();  // the derived ids depend on the boundary value
          (void)w.shfl_broadcast(rows, 0);  // spread the boundary to lanes
          w.sh_write(sh_row, sidx, rows, mask);
        } else {
          w.sh_write(sh_row, sidx, w.ld_global(row_ids, idx, mask), mask);
        }
        w.sh_write(sh_col, sidx, w.ld_global(col_ids, idx, mask), mask);
        w.sh_write(sh_val, sidx, w.ld_global(edge_val.data(), idx, mask),
                   mask);
      }
      w.sync();  // the memory barrier before Stage 2 reads the cache
    }

    // ------------------------------ Stage 2 ------------------------------
    const int G = geom.n_groups;
    const int per = (count + G - 1) / G;  // NZEs per thread-group
    const bool consecutive = cfg.policy == SchedulePolicy::kConsecutive;

    // Per-lane running accumulators and per-group current row.
    std::vector<std::array<float, 4>> acc(
        std::size_t(kWarpSize) * std::size_t(geom.chunks),
        std::array<float, 4>{});
    std::vector<vid_t> cur(std::size_t(G), -1);

    auto feat_off = [&](int l, int c) {
      return (c * geom.group_threads + geom.lane_in_group(l)) * geom.vec;
    };

    // Writes group g's accumulated row sum to y with atomics, then clears.
    auto flush_group = [&](const std::vector<int>& gs) {
      if (load_only) return;
      for (int c = 0; c < geom.chunks; ++c) {
        for (int j = 0; j < geom.vec; ++j) {
          LaneArray<std::int64_t> idx{};
          LaneArray<float> val{};
          Mask mask = 0;
          for (int g : gs) {
            for (int t = 0; t < geom.group_threads; ++t) {
              const int l = g * geom.layout_stride + t;
              const int off = feat_off(l, c);
              if (off >= f) continue;
              idx[l] = std::int64_t(cur[std::size_t(g)]) * f + off + j;
              val[l] = acc[std::size_t(l) * std::size_t(geom.chunks) +
                           std::size_t(c)][std::size_t(j)];
              mask |= Mask{1} << l;
            }
          }
          if (mask != 0) w.atomic_add(y.data(), idx, val, mask);
        }
      }
      for (int g : gs) {
        for (int t = 0; t < geom.group_threads; ++t) {
          const int l = g * geom.layout_stride + t;
          for (int c = 0; c < geom.chunks; ++c) {
            acc[std::size_t(l) * std::size_t(geom.chunks) + std::size_t(c)] =
                {};
          }
        }
      }
    };

    const int U = std::max(1, cfg.unroll);
    std::vector<vid_t> t_row(std::size_t(U) * std::size_t(G));
    std::vector<vid_t> t_col(std::size_t(U) * std::size_t(G));
    std::vector<float> t_val(std::size_t(U) * std::size_t(G));
    std::vector<bool> t_ok(std::size_t(U) * std::size_t(G));
    std::vector<detail::VecLanes> fbuf(std::size_t(U) *
                                       std::size_t(geom.chunks));
    std::vector<std::int64_t> prev_line(
        std::size_t(kWarpSize) * std::size_t(geom.chunks), -1);

    for (int tb = 0; tb < per; tb += U) {
      const int bl = std::min(U, per - tb);

      // ---- load phase: NZE ids then this block's vertex features --------
      for (int t = 0; t < bl; ++t) {
        LaneArray<std::int64_t> gidx{};
        LaneArray<int> sidx{};
        Mask mask = 0;
        for (int g = 0; g < G; ++g) {
          const int pos =
              consecutive ? g * per + (tb + t) : (tb + t) * G + g;
          const bool ok = pos < count;
          t_ok[std::size_t(t) * std::size_t(G) + std::size_t(g)] = ok;
          if (!ok) continue;
          for (int q = 0; q < geom.group_threads; ++q) {
            const int l = g * geom.layout_stride + q;
            gidx[l] = base + pos;
            sidx[l] = pos;
            mask |= Mask{1} << l;
          }
        }
        if (mask == 0) continue;
        LaneArray<vid_t> rows{}, cols{};
        LaneArray<float> vals{};
        if (cfg.stage1_caching) {
          rows = w.sh_read(std::span<const vid_t>(sh_row), sidx, mask);
          cols = w.sh_read(std::span<const vid_t>(sh_col), sidx, mask);
          vals = w.sh_read(std::span<const float>(sh_val), sidx, mask);
        } else {
          rows = w.ld_global(row_ids, gidx, mask);
          cols = w.ld_global(col_ids, gidx, mask);
          vals = w.ld_global(edge_val.data(), gidx, mask);
          w.use();  // feature addresses depend on these ids
        }
        for (int g = 0; g < G; ++g) {
          if (!t_ok[std::size_t(t) * std::size_t(G) + std::size_t(g)]) continue;
          const int l = g * geom.layout_stride;
          t_row[std::size_t(t) * std::size_t(G) + std::size_t(g)] = rows[l];
          t_col[std::size_t(t) * std::size_t(G) + std::size_t(g)] = cols[l];
          t_val[std::size_t(t) * std::size_t(G) + std::size_t(g)] = vals[l];
        }
        // Vertex-feature vector loads for this iteration (stay in the load
        // window; the whole block's loads overlap). A lane whose target 128B
        // line matches its previous iteration's line hits L1 — the data
        // locality the Consecutive policy wins (§5.4.3, Fig. 10): a group's
        // consecutive NZEs are usually the same row, whose sorted column ids
        // land on nearby feature lines.
        for (int c = 0; c < geom.chunks; ++c) {
          LaneArray<std::int64_t> fidx{};
          Mask fmask = 0, hit = 0;
          for (int l = 0; l < kWarpSize; ++l) {
            if (!geom.lane_active(l)) continue;
            const int g = geom.lane_group(l);
            if (!t_ok[std::size_t(t) * std::size_t(G) + std::size_t(g)]) {
              continue;
            }
            const int off = feat_off(l, c);
            if (off >= f) continue;
            fidx[l] =
                std::int64_t(
                    t_col[std::size_t(t) * std::size_t(G) + std::size_t(g)]) *
                    f +
                off;
            fmask |= Mask{1} << l;
            const std::int64_t line = fidx[l] * std::int64_t(sizeof(float)) /
                                      gpusim::kTransactionBytes;
            auto& prev = prev_line[std::size_t(l) * std::size_t(geom.chunks) +
                                   std::size_t(c)];
            if (line == prev) hit |= Mask{1} << l;
            prev = line;
          }
          auto& fb =
              fbuf[std::size_t(t) * std::size_t(geom.chunks) + std::size_t(c)];
          if ((fmask & ~hit) != 0) {
            fb = detail::load_vec(w, x.data(), fidx, fmask & ~hit, geom.vec);
          }
          if ((fmask & hit) != 0) {
            // L1-resident lanes: cheap load, functional copy.
            (void)w.ld_global_l2(x.data(), fidx, fmask & hit);
            for (int l = 0; l < kWarpSize; ++l) {
              if (!((fmask & hit) >> l & 1u)) continue;
              for (int j = 0; j < geom.vec; ++j) {
                fb[l][j] = x[std::size_t(fidx[l]) + std::size_t(j)];
              }
            }
          }
        }
      }
      w.use();  // block boundary: consume all outstanding feature loads

      if (load_only) continue;

      // ---- compute phase: row-split flushes + running FMA reduction -----
      for (int t = 0; t < bl; ++t) {
        std::vector<int> flushing;
        for (int g = 0; g < G; ++g) {
          if (!t_ok[std::size_t(t) * std::size_t(G) + std::size_t(g)]) continue;
          const vid_t r =
              t_row[std::size_t(t) * std::size_t(G) + std::size_t(g)];
          if (cur[std::size_t(g)] != r) {
            if (cur[std::size_t(g)] >= 0) flushing.push_back(g);
          }
        }
        if (!flushing.empty()) flush_group(flushing);
        for (int g = 0; g < G; ++g) {
          if (!t_ok[std::size_t(t) * std::size_t(G) + std::size_t(g)]) continue;
          cur[std::size_t(g)] =
              t_row[std::size_t(t) * std::size_t(G) + std::size_t(g)];
        }
        for (int c = 0; c < geom.chunks; ++c) {
          const auto& fv =
              fbuf[std::size_t(t) * std::size_t(geom.chunks) + std::size_t(c)];
          for (int l = 0; l < kWarpSize; ++l) {
            if (!geom.lane_active(l)) continue;
            const int g = geom.lane_group(l);
            if (!t_ok[std::size_t(t) * std::size_t(G) + std::size_t(g)]) {
              continue;
            }
            if (feat_off(l, c) >= f) continue;
            const float ev =
                t_val[std::size_t(t) * std::size_t(G) + std::size_t(g)];
            auto& a = acc[std::size_t(l) * std::size_t(geom.chunks) +
                          std::size_t(c)];
            for (int j = 0; j < geom.vec; ++j) a[std::size_t(j)] += ev * fv[l][j];
          }
        }
        w.alu(geom.chunks * geom.vec);
      }
    }

    // Final flush of every group still holding a row sum.
    std::vector<int> remaining;
    for (int g = 0; g < G; ++g) {
      if (cur[std::size_t(g)] >= 0) remaining.push_back(g);
    }
    if (!remaining.empty()) flush_group(remaining);
  };

  return gpusim::launch(dev, lc, body);
}

gpusim::KernelStats gnnone_spmm(const gpusim::DeviceSpec& dev, const Coo& coo,
                                std::span<const float> edge_val,
                                std::span<const float> x, int f,
                                std::span<float> y, const GnnOneConfig& cfg) {
  return gnnone_spmm_impl(dev, coo, {}, edge_val, x, f, y, cfg);
}

gpusim::KernelStats gnnone_spmm_csr(const gpusim::DeviceSpec& dev,
                                    const Csr& csr,
                                    std::span<const float> edge_val,
                                    std::span<const float> x, int f,
                                    std::span<float> y,
                                    const GnnOneConfig& cfg) {
  // Functional row ids derived host-side (the device derives them from the
  // offsets walk, whose cost the impl charges).
  const Coo coo = csr_to_coo(csr);
  return gnnone_spmm_impl(dev, coo, csr.offsets, edge_val, x, f, y, cfg);
}

}  // namespace gnnone
