// Fused GAT attention on the GNNOne two-stage design (see gnnone_fused.h).
#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <vector>

#include "gpusim/launch.h"
#include "kernels/detail/thread_group.h"
#include "kernels/detail/vec_load.h"
#include "kernels/gnnone_fused.h"

namespace gnnone {

namespace {

using gpusim::kWarpSize;
using gpusim::LaneArray;
using gpusim::Mask;

int normalized_cache_size(const GnnOneConfig& cfg) {
  int c = std::max(cfg.cache_size, kWarpSize);
  return (c + kWarpSize - 1) / kWarpSize * kWarpSize;
}

float leaky(float v, float slope) { return v >= 0.0f ? v : slope * v; }

/// Shared skeleton of the two edge-parallel scalar passes: stages row/col
/// ids, gathers the per-vertex scores, computes the LeakyReLU logit per NZE
/// and hands it to `sink`, one 32-NZE chunk at a time.
template <typename Sink>
gpusim::KernelStats scalar_pass(const gpusim::DeviceSpec& dev, const Coo& coo,
                                std::span<const float> s_src,
                                std::span<const float> s_dst,
                                float leaky_slope, const GnnOneConfig& cfg,
                                Sink&& sink) {
  const eid_t nnz = coo.nnz();
  const int cache = normalized_cache_size(cfg);
  gpusim::LaunchConfig lc;
  lc.label = "gnnone_fused_scalar_pass";
  const std::int64_t warps = (nnz + cache - 1) / cache;
  lc.warps_per_cta = cfg.warps_per_cta;
  lc.num_ctas = (warps + lc.warps_per_cta - 1) / lc.warps_per_cta;
  lc.shared_bytes_per_cta = std::size_t(lc.warps_per_cta) *
                            std::size_t(cache) * (2 * sizeof(vid_t));
  lc.regs_per_thread = 32;

  const vid_t* row_ids = coo.row.data();
  const vid_t* col_ids = coo.col.data();

  auto body = [&](gpusim::WarpCtx& w) {
    const std::int64_t base = w.global_warp_id() * cache;
    if (base >= nnz) return;
    const int count = int(std::min<std::int64_t>(cache, nnz - base));

    auto sh_row = w.shared().alloc<vid_t>(std::size_t(cache));
    auto sh_col = w.shared().alloc<vid_t>(std::size_t(cache));
    for (int c = 0; c < count; c += kWarpSize) {
      const int k = std::min(kWarpSize, count - c);
      const Mask mask = gpusim::lanes_below(k);
      LaneArray<std::int64_t> idx{};
      LaneArray<int> sidx{};
      for (int l = 0; l < k; ++l) {
        idx[l] = base + c + l;
        sidx[l] = c + l;
      }
      w.sh_write(sh_row, sidx, w.ld_global(row_ids, idx, mask), mask);
      w.sh_write(sh_col, sidx, w.ld_global(col_ids, idx, mask), mask);
    }
    w.sync();

    for (int c = 0; c < count; c += kWarpSize) {
      const int k = std::min(kWarpSize, count - c);
      const Mask mask = gpusim::lanes_below(k);
      LaneArray<int> sidx{};
      for (int l = 0; l < k; ++l) sidx[l] = c + l;
      const auto rows = w.sh_read(std::span<const vid_t>(sh_row), sidx, mask);
      const auto cols = w.sh_read(std::span<const vid_t>(sh_col), sidx, mask);
      LaneArray<std::int64_t> ri{}, ci{};
      for (int l = 0; l < k; ++l) {
        ri[l] = rows[l];
        ci[l] = cols[l];
      }
      const auto sd = w.ld_global(s_dst.data(), ri, mask);
      const auto ss = w.ld_global(s_src.data(), ci, mask);
      w.use();
      LaneArray<float> logit{};
      for (int l = 0; l < k; ++l) logit[l] = leaky(sd[l] + ss[l], leaky_slope);
      w.alu(2);
      LaneArray<std::int64_t> ei{};
      for (int l = 0; l < k; ++l) ei[l] = base + c + l;
      sink(w, mask, k, ri, ei, logit);
    }
  };
  return gpusim::launch(dev, lc, body);
}

}  // namespace

FusedAttentionStats gnnone_fused_attention(
    const gpusim::DeviceSpec& dev, const Coo& coo,
    std::span<const float> s_src, std::span<const float> s_dst,
    std::span<const float> h, int f, float leaky_slope,
    std::span<float> alpha, std::span<float> out, const GnnOneConfig& cfg) {
  cfg.Validate();
  assert(s_src.size() == std::size_t(coo.num_rows));
  assert(s_dst.size() == std::size_t(coo.num_rows));
  assert(h.size() == std::size_t(coo.num_cols) * std::size_t(f));
  assert(alpha.size() == std::size_t(coo.nnz()));
  assert(out.size() == std::size_t(coo.num_rows) * std::size_t(f));
  std::memset(out.data(), 0, out.size() * sizeof(float));

  FusedAttentionStats stats;
  std::vector<float> row_max(std::size_t(coo.num_rows), -1e30f);
  std::vector<float> row_norm(std::size_t(coo.num_rows), 0.0f);

  // Pass 0: per-destination running max (softmax stability).
  stats.max_pass = scalar_pass(
      dev, coo, s_src, s_dst, leaky_slope, cfg,
      [&](gpusim::WarpCtx& w, Mask mask, int, const LaneArray<std::int64_t>& ri,
          const LaneArray<std::int64_t>&, const LaneArray<float>& logit) {
        w.atomic_max(row_max.data(), ri, logit, mask);
      });

  // Pass 1: exp(e - max) into the edge tensor + destination normalizer.
  stats.logit_pass = scalar_pass(
      dev, coo, s_src, s_dst, leaky_slope, cfg,
      [&](gpusim::WarpCtx& w, Mask mask, int k,
          const LaneArray<std::int64_t>& ri, const LaneArray<std::int64_t>& ei,
          const LaneArray<float>& logit) {
        const auto mx = w.ld_global(row_max.data(), ri, mask);
        w.use();
        LaneArray<float> z{};
        for (int l = 0; l < k; ++l) z[l] = std::exp(logit[l] - mx[l]);
        w.alu(1);
        w.st_global(alpha.data(), ei, z, mask);  // un-normalized for now
        w.atomic_add(row_norm.data(), ri, z, mask);
      });

  // Pass 2: alpha = z / norm[dst] computed on the fly, feeding the running-
  // reduction SpMM directly — alpha is normalized in-register and written
  // once (for backward), never re-read.
  {
    const eid_t nnz = coo.nnz();
    const int cache = normalized_cache_size(cfg);
    const auto geom = detail::make_group_geom(f, cfg.vec_width);
    gpusim::LaunchConfig lc;
    lc.label = "gnnone_fused_softmax_spmm";
    const std::int64_t warps = (nnz + cache - 1) / cache;
    lc.warps_per_cta = cfg.warps_per_cta;
    lc.num_ctas = (warps + lc.warps_per_cta - 1) / lc.warps_per_cta;
    lc.shared_bytes_per_cta = std::size_t(lc.warps_per_cta) *
                              std::size_t(cache) *
                              (2 * sizeof(vid_t) + sizeof(float));
    lc.regs_per_thread = 34 + geom.vec * geom.chunks;

    const vid_t* row_ids = coo.row.data();
    const vid_t* col_ids = coo.col.data();

    auto body = [&](gpusim::WarpCtx& w) {
      const std::int64_t base = w.global_warp_id() * cache;
      if (base >= nnz) return;
      const int count = int(std::min<std::int64_t>(cache, nnz - base));

      // Stage 1: ids + un-normalized attention values.
      auto sh_row = w.shared().alloc<vid_t>(std::size_t(cache));
      auto sh_col = w.shared().alloc<vid_t>(std::size_t(cache));
      auto sh_z = w.shared().alloc<float>(std::size_t(cache));
      for (int c = 0; c < count; c += kWarpSize) {
        const int k = std::min(kWarpSize, count - c);
        const Mask mask = gpusim::lanes_below(k);
        LaneArray<std::int64_t> idx{};
        LaneArray<int> sidx{};
        for (int l = 0; l < k; ++l) {
          idx[l] = base + c + l;
          sidx[l] = c + l;
        }
        w.sh_write(sh_row, sidx, w.ld_global(row_ids, idx, mask), mask);
        w.sh_write(sh_col, sidx, w.ld_global(col_ids, idx, mask), mask);
        w.sh_write(sh_z, sidx, w.ld_global(alpha.data(), idx, mask), mask);
      }
      w.sync();

      // Normalize the cached z in place (one gather of norm per 32 NZEs)
      // and write alpha back for the training backward.
      for (int c = 0; c < count; c += kWarpSize) {
        const int k = std::min(kWarpSize, count - c);
        const Mask mask = gpusim::lanes_below(k);
        LaneArray<int> sidx{};
        for (int l = 0; l < k; ++l) sidx[l] = c + l;
        const auto rows = w.sh_read(std::span<const vid_t>(sh_row), sidx, mask);
        LaneArray<std::int64_t> ri{};
        for (int l = 0; l < k; ++l) ri[l] = rows[l];
        const auto norm = w.ld_global(row_norm.data(), ri, mask);
        w.use();
        auto z = w.sh_read(std::span<const float>(sh_z), sidx, mask);
        for (int l = 0; l < k; ++l) {
          z[l] = norm[l] > 0.0f ? z[l] / norm[l] : 0.0f;
        }
        w.alu(1);
        w.sh_write(sh_z, sidx, z, mask);
        LaneArray<std::int64_t> ei{};
        for (int l = 0; l < k; ++l) ei[l] = base + c + l;
        w.st_global(alpha.data(), ei, z, mask);
      }
      w.sync();

      // Stage 2: running-reduction SpMM with the in-shared alpha.
      const int G = geom.n_groups;
      const int per = (count + G - 1) / G;
      std::vector<std::array<float, 4>> acc(
          std::size_t(kWarpSize) * std::size_t(geom.chunks),
          std::array<float, 4>{});
      std::vector<vid_t> cur(std::size_t(G), -1);
      auto feat_off = [&](int l, int c) {
        return (c * geom.group_threads + geom.lane_in_group(l)) * geom.vec;
      };
      auto flush = [&](const std::vector<int>& gs) {
        for (int c = 0; c < geom.chunks; ++c) {
          for (int j = 0; j < geom.vec; ++j) {
            LaneArray<std::int64_t> oi{};
            LaneArray<float> ov{};
            Mask mask = 0;
            for (int g : gs) {
              for (int t = 0; t < geom.group_threads; ++t) {
                const int l = g * geom.layout_stride + t;
                const int off = feat_off(l, c);
                if (off >= f) continue;
                oi[l] = std::int64_t(cur[std::size_t(g)]) * f + off + j;
                ov[l] = acc[std::size_t(l) * std::size_t(geom.chunks) +
                            std::size_t(c)][std::size_t(j)];
                mask |= Mask{1} << l;
              }
            }
            if (mask != 0) w.atomic_add(out.data(), oi, ov, mask);
          }
        }
        for (int g : gs) {
          for (int t = 0; t < geom.group_threads; ++t) {
            const int l = g * geom.layout_stride + t;
            for (int c = 0; c < geom.chunks; ++c) {
              acc[std::size_t(l) * std::size_t(geom.chunks) +
                  std::size_t(c)] = {};
            }
          }
        }
      };

      for (int t = 0; t < per; ++t) {
        LaneArray<int> sidx{};
        Mask mask = 0;
        std::vector<bool> ok(static_cast<std::size_t>(G));
        for (int g = 0; g < G; ++g) {
          const int pos = g * per + t;
          ok[std::size_t(g)] = pos < count;
          if (!ok[std::size_t(g)]) continue;
          for (int q = 0; q < geom.group_threads; ++q) {
            const int l = g * geom.layout_stride + q;
            sidx[l] = pos;
            mask |= Mask{1} << l;
          }
        }
        if (mask == 0) continue;
        const auto rows = w.sh_read(std::span<const vid_t>(sh_row), sidx, mask);
        const auto cols = w.sh_read(std::span<const vid_t>(sh_col), sidx, mask);
        const auto zs = w.sh_read(std::span<const float>(sh_z), sidx, mask);

        std::vector<int> flushing;
        for (int g = 0; g < G; ++g) {
          if (!ok[std::size_t(g)]) continue;
          const vid_t r = rows[g * geom.layout_stride];
          if (cur[std::size_t(g)] != r && cur[std::size_t(g)] >= 0) {
            flushing.push_back(g);
          }
        }
        if (!flushing.empty()) flush(flushing);
        for (int g = 0; g < G; ++g) {
          if (ok[std::size_t(g)]) cur[std::size_t(g)] = rows[g * geom.layout_stride];
        }

        for (int c = 0; c < geom.chunks; ++c) {
          LaneArray<std::int64_t> fi{};
          Mask fmask = 0;
          for (int l = 0; l < kWarpSize; ++l) {
            if (!geom.lane_active(l)) continue;
            const int g = geom.lane_group(l);
            if (!ok[std::size_t(g)]) continue;
            const int off = feat_off(l, c);
            if (off >= f) continue;
            fi[l] = std::int64_t(cols[g * geom.layout_stride]) * f + off;
            fmask |= Mask{1} << l;
          }
          if (fmask == 0) continue;
          const auto hv = detail::load_vec(w, h.data(), fi, fmask, geom.vec);
          if (t % std::max(1, cfg.unroll) == std::max(1, cfg.unroll) - 1) {
            w.use();
          }
          for (int l = 0; l < kWarpSize; ++l) {
            if (!(fmask >> l & 1u)) continue;
            const int g = geom.lane_group(l);
            auto& a = acc[std::size_t(l) * std::size_t(geom.chunks) +
                          std::size_t(c)];
            for (int j = 0; j < geom.vec; ++j) {
              a[std::size_t(j)] += zs[g * geom.layout_stride] * hv[l][j];
            }
          }
          w.alu(geom.vec);
        }
      }
      std::vector<int> remaining;
      for (int g = 0; g < G; ++g) {
        if (cur[std::size_t(g)] >= 0) remaining.push_back(g);
      }
      if (!remaining.empty()) flush(remaining);
    };
    stats.aggregate_pass = gpusim::launch(dev, lc, body);
  }
  return stats;
}

}  // namespace gnnone
